package inventory

import (
	"fmt"
	"sort"

	"griphon/internal/bw"
)

// Customer identifies a cloud service provider leasing GRIPhoN service.
type Customer string

// Quota bounds one customer's consumption. Zero fields are unlimited.
type Quota struct {
	// MaxConnections caps simultaneous connections.
	MaxConnections int
	// MaxBandwidth caps the sum of connection rates.
	MaxBandwidth bw.Rate
}

// Usage is a customer's current consumption.
type Usage struct {
	Connections int
	Bandwidth   bw.Rate
}

// Ledger tracks per-customer usage, enforces quotas, and guarantees resource
// isolation: a resource claimed by one customer cannot be touched by another.
type Ledger struct {
	quotas map[Customer]Quota
	usage  map[Customer]Usage
	owners map[string]Customer // resource key -> owning customer
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		quotas: make(map[Customer]Quota),
		usage:  make(map[Customer]Usage),
		owners: make(map[string]Customer),
	}
}

// SetQuota installs (or replaces) a customer's quota.
func (l *Ledger) SetQuota(c Customer, q Quota) { l.quotas[c] = q }

// QuotaOf returns the customer's quota (zero = unlimited).
func (l *Ledger) QuotaOf(c Customer) Quota { return l.quotas[c] }

// UsageOf returns the customer's current usage.
func (l *Ledger) UsageOf(c Customer) Usage { return l.usage[c] }

// Admit checks and records a new connection of the given rate. It fails,
// without recording anything, if either quota bound would be exceeded.
func (l *Ledger) Admit(c Customer, rate bw.Rate) error {
	if c == "" {
		return fmt.Errorf("inventory: empty customer")
	}
	if rate <= 0 {
		return fmt.Errorf("inventory: non-positive rate %v", rate)
	}
	q := l.quotas[c]
	u := l.usage[c]
	if q.MaxConnections > 0 && u.Connections+1 > q.MaxConnections {
		return fmt.Errorf("%w: %s at %d connections", ErrQuota, c, u.Connections)
	}
	if q.MaxBandwidth > 0 && u.Bandwidth+rate > q.MaxBandwidth {
		return fmt.Errorf("%w: %s at %v of %v", ErrQuota, c, u.Bandwidth, q.MaxBandwidth)
	}
	u.Connections++
	u.Bandwidth += rate
	l.usage[c] = u
	return nil
}

// Discharge reverses an Admit when a connection ends (or its setup fails).
func (l *Ledger) Discharge(c Customer, rate bw.Rate) error {
	u := l.usage[c]
	if u.Connections == 0 || u.Bandwidth < rate {
		return fmt.Errorf("inventory: discharge underflow for %s (%d conns, %v)", c, u.Connections, u.Bandwidth)
	}
	u.Connections--
	u.Bandwidth -= rate
	l.usage[c] = u
	return nil
}

// Claim records that a resource (by unique key, e.g. "ot:OT-I-03" or
// "conn:C42") belongs to a customer. Claiming a resource already owned by a
// different customer is an isolation violation and fails.
func (l *Ledger) Claim(c Customer, key string) error {
	if c == "" || key == "" {
		return fmt.Errorf("inventory: empty customer or key")
	}
	if cur, ok := l.owners[key]; ok {
		return fmt.Errorf("inventory: %s already owned by %s", key, cur)
	}
	l.owners[key] = c
	return nil
}

// OwnerOf returns the owner of a resource key, or "".
func (l *Ledger) OwnerOf(key string) Customer { return l.owners[key] }

// Verify checks that customer c owns key — the isolation gate every
// customer-initiated mutation goes through.
func (l *Ledger) Verify(c Customer, key string) error {
	owner, ok := l.owners[key]
	if !ok {
		return fmt.Errorf("inventory: unknown resource %s", key)
	}
	if owner != c {
		return fmt.Errorf("inventory: %s belongs to %s, not %s", key, owner, c)
	}
	return nil
}

// Release drops a claim; the customer must own it.
func (l *Ledger) Release(c Customer, key string) error {
	if err := l.Verify(c, key); err != nil {
		return err
	}
	delete(l.owners, key)
	return nil
}

// Claims returns every claimed resource key, sorted — the enumeration
// invariant auditors sweep for leaked claims.
func (l *Ledger) Claims() []string {
	out := make([]string, 0, len(l.owners))
	for k := range l.owners {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Customers returns every customer with recorded usage or quota, sorted.
func (l *Ledger) Customers() []Customer {
	set := map[Customer]bool{}
	for c := range l.quotas {
		set[c] = true
	}
	for c := range l.usage {
		set[c] = true
	}
	out := make([]Customer, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
