// Package inventory provides the controller's resource-database mechanics:
// atomic multi-resource transactions with rollback, and a per-customer ledger
// enforcing quotas and isolation. The paper (§2.2, §4) makes the controller
// "responsible for keeping track of the available network resources in its
// database" and for "isolation of services across different CSPs"; this
// package is that bookkeeping, separated from orchestration so it can be
// tested exhaustively on its own.
package inventory

import "fmt"

// Txn accumulates reversible steps. A connection setup reserves an OT pair, a
// regen chain, a wavelength per segment, FXC ports and ODU slots; if any step
// fails, everything already taken must be returned. Txn makes that pattern
// mechanical: Do each step with its undo, Rollback on failure, Commit on
// success.
type Txn struct {
	undos []func()
	done  bool
}

// NewTxn returns an open transaction.
func NewTxn() *Txn { return &Txn{} }

// Do runs do; if it succeeds the undo is recorded for a future Rollback.
// Calling Do on a committed or rolled-back transaction panics: that is always
// a lifecycle bug.
func (t *Txn) Do(do func() error, undo func()) error {
	if t.done {
		panic("inventory: Do on a finished transaction")
	}
	if err := do(); err != nil {
		return err
	}
	if undo != nil {
		t.undos = append(t.undos, undo)
	}
	return nil
}

// Reserve is a convenience for steps that produce a value: it runs alloc and
// records release(value) as the undo.
func Reserve[T any](t *Txn, alloc func() (T, error), release func(T)) (T, error) {
	var got T
	err := t.Do(func() error {
		v, err := alloc()
		if err != nil {
			return err
		}
		got = v
		return nil
	}, nil)
	if err != nil {
		return got, err
	}
	v := got
	t.undos = append(t.undos, func() { release(v) })
	return got, nil
}

// Rollback undoes every recorded step in reverse order. It is a no-op on a
// committed transaction, so `defer txn.Rollback()` is safe.
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	for i := len(t.undos) - 1; i >= 0; i-- {
		t.undos[i]()
	}
	t.undos = nil
}

// Commit keeps every step. After Commit, Rollback does nothing.
func (t *Txn) Commit() {
	if t.done {
		panic("inventory: Commit on a finished transaction")
	}
	t.done = true
	t.undos = nil
}

// Steps returns the number of recorded undo steps (for tests/diagnostics).
func (t *Txn) Steps() int { return len(t.undos) }

// Finished reports whether the transaction was committed or rolled back.
func (t *Txn) Finished() bool { return t.done }

// ErrQuota is wrapped by ledger admission failures.
var ErrQuota = fmt.Errorf("inventory: quota exceeded")
