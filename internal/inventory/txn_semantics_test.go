package inventory

import (
	"errors"
	"testing"
)

// These tests pin the transaction lifecycle contract the txnrollback analyzer
// (internal/analysis) assumes when it pushes error-path releases into Txn
// rollback closures: undo order is LIFO, a finished transaction refuses new
// work loudly, and a committed transaction can never fire an undo.

func TestTxnDoAfterRollbackPanics(t *testing.T) {
	txn := NewTxn()
	txn.Rollback()
	defer func() {
		if recover() == nil {
			t.Error("Do after Rollback did not panic")
		}
	}()
	txn.Do(func() error { return nil }, nil)
}

func TestTxnCommitAfterRollbackPanics(t *testing.T) {
	txn := NewTxn()
	txn.Rollback()
	defer func() {
		if recover() == nil {
			t.Error("Commit after Rollback did not panic")
		}
	}()
	txn.Commit()
}

func TestTxnCommittedNeverInvokesRollbacks(t *testing.T) {
	txn := NewTxn()
	fired := 0
	for i := 0; i < 3; i++ {
		if err := txn.Do(func() error { return nil }, func() { fired++ }); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	txn.Commit()
	// Rollback on a committed transaction is a documented no-op (so
	// `defer txn.Rollback()` is safe); the undos must stay un-run.
	txn.Rollback()
	txn.Rollback()
	if fired != 0 {
		t.Errorf("committed transaction fired %d undos, want 0", fired)
	}
	if !txn.Finished() {
		t.Error("committed transaction does not report Finished")
	}
}

func TestTxnDoubleRollbackRunsUndosOnce(t *testing.T) {
	txn := NewTxn()
	fired := 0
	if err := txn.Do(func() error { return nil }, func() { fired++ }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	txn.Rollback()
	txn.Rollback()
	if fired != 1 {
		t.Errorf("undo ran %d times across a double Rollback, want 1", fired)
	}
}

// TestTxnLIFOAcrossDoAndReserve interleaves both step-recording forms and
// checks one LIFO order covers them — the property the controller's setup
// path depends on when spectrum, ROADM and ledger steps mix.
func TestTxnLIFOAcrossDoAndReserve(t *testing.T) {
	txn := NewTxn()
	var order []string
	if err := txn.Do(func() error { return nil }, func() { order = append(order, "do1") }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if _, err := Reserve(txn, func() (int, error) { return 7, nil }, func(int) {
		order = append(order, "reserve")
	}); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := txn.Do(func() error { return nil }, func() { order = append(order, "do2") }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	txn.Rollback()
	want := []string{"do2", "reserve", "do1"}
	if len(order) != len(want) {
		t.Fatalf("rollback ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rollback order %v, want %v", order, want)
		}
	}
}

// TestReserveReleaseGetsAllocatedValue pins that the release closure receives
// exactly the value alloc produced, captured at reservation time.
func TestReserveReleaseGetsAllocatedValue(t *testing.T) {
	txn := NewTxn()
	next := 41
	var released []int
	alloc := func() (int, error) { next++; return next, nil }
	release := func(v int) { released = append(released, v) }
	a, err := Reserve(txn, alloc, release)
	if err != nil || a != 42 {
		t.Fatalf("Reserve = %d, %v", a, err)
	}
	b, err := Reserve(txn, alloc, release)
	if err != nil || b != 43 {
		t.Fatalf("Reserve = %d, %v", b, err)
	}
	txn.Rollback()
	if len(released) != 2 || released[0] != 43 || released[1] != 42 {
		t.Errorf("released %v, want [43 42]", released)
	}
}

func TestReserveOnFinishedTxnPanics(t *testing.T) {
	txn := NewTxn()
	txn.Commit()
	defer func() {
		if recover() == nil {
			t.Error("Reserve on a committed transaction did not panic")
		}
	}()
	_, _ = Reserve(txn, func() (int, error) { return 0, nil }, func(int) {})
}

func TestReserveFailedAllocLeavesTxnUsable(t *testing.T) {
	txn := NewTxn()
	boom := errors.New("exhausted")
	if _, err := Reserve(txn, func() (int, error) { return 0, boom }, func(int) {}); !errors.Is(err, boom) {
		t.Fatalf("Reserve error = %v, want %v", err, boom)
	}
	if txn.Finished() {
		t.Error("failed Reserve finished the transaction")
	}
	// The transaction must still accept and roll back further steps.
	fired := false
	if err := txn.Do(func() error { return nil }, func() { fired = true }); err != nil {
		t.Fatalf("Do after failed Reserve: %v", err)
	}
	txn.Rollback()
	if !fired {
		t.Error("undo recorded after a failed Reserve did not run on rollback")
	}
}
