package journal

import "testing"

// TestAppendZeroAlloc gates the binary append hot path: once the scratch
// buffer has warmed up, Append must not allocate. A regression here is a
// throughput regression on every commit the controller journals.
func TestAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector")
	}
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := []byte(`{"cid":"c-1","kind":"commit","paths":["a","b"],"gbps":40}`)
	// Warm the scratch buffer.
	if _, err := s.Append("commit", data); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Append("commit", data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Append allocates %.1f objects per call, want 0", allocs)
	}
}
