package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Payload encodings. The first byte of every frame payload selects the
// format: the legacy JSON envelope begins with '{', the binary encoding with
// binTag. Formats mix freely within one log — a state directory written by
// the JSON era replays through the same reader as one written today, and a
// directory can hold a JSON snapshot with a binary WAL appended after an
// upgrade.
const (
	binTag = 0x01

	// Kind table: the common record kinds collapse to one byte. kindInline
	// escapes any kind the table does not know (varint length + raw name),
	// so new kinds never need a format bump.
	kindInline = 0x00
	kindCommit = 0x01
)

// appendBinaryRecord appends the binary payload for one record:
//
//	binTag | uvarint seq | kind byte [uvarint len | name] | raw data
func appendBinaryRecord(buf []byte, seq uint64, kind string, data []byte) []byte {
	buf = append(buf, binTag)
	buf = binary.AppendUvarint(buf, seq)
	if kind == "commit" {
		buf = append(buf, kindCommit)
	} else {
		buf = append(buf, kindInline)
		buf = binary.AppendUvarint(buf, uint64(len(kind)))
		buf = append(buf, kind...)
	}
	return append(buf, data...)
}

// decodeRecord decodes one frame payload in either format. The returned
// Entry's Data is copied out of the read buffer.
func decodeRecord(payload []byte) (Entry, error) {
	if len(payload) == 0 {
		return Entry{}, fmt.Errorf("empty record payload")
	}
	if payload[0] == '{' {
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return Entry{}, fmt.Errorf("corrupt JSON record: %w", err)
		}
		return e, nil
	}
	if payload[0] != binTag {
		return Entry{}, fmt.Errorf("unknown record format byte %#x", payload[0])
	}
	rest := payload[1:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return Entry{}, fmt.Errorf("corrupt record sequence varint")
	}
	rest = rest[n:]
	if len(rest) == 0 {
		return Entry{}, fmt.Errorf("record truncated before kind byte")
	}
	var kind string
	switch rest[0] {
	case kindCommit:
		kind = "commit"
		rest = rest[1:]
	case kindInline:
		rest = rest[1:]
		klen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < klen {
			return Entry{}, fmt.Errorf("corrupt inline kind")
		}
		kind = string(rest[n : n+int(klen)])
		rest = rest[n+int(klen):]
	default:
		return Entry{}, fmt.Errorf("unknown kind byte %#x", rest[0])
	}
	return Entry{Seq: seq, Kind: kind, Data: append([]byte(nil), rest...)}, nil
}

// appendBinarySnapshotPreamble appends the binary snapshot payload prefix:
//
//	binTag | uvarint seq
//
// followed (by the caller) by the raw snapshot bytes.
func appendBinarySnapshotPreamble(buf []byte, seq uint64) []byte {
	buf = append(buf, binTag)
	return binary.AppendUvarint(buf, seq)
}

// decodeSnapshot decodes a snapshot frame payload in either format,
// returning the covered sequence number and the raw snapshot bytes.
func decodeSnapshot(payload []byte) (seq uint64, data []byte, err error) {
	if len(payload) == 0 {
		return 0, nil, fmt.Errorf("empty snapshot payload")
	}
	if payload[0] == '{' {
		var env snapEnvelope
		if err := json.Unmarshal(payload, &env); err != nil {
			return 0, nil, fmt.Errorf("corrupt snapshot envelope: %w", err)
		}
		return env.Seq, env.Data, nil
	}
	if payload[0] != binTag {
		return 0, nil, fmt.Errorf("unknown snapshot format byte %#x", payload[0])
	}
	rest := payload[1:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, fmt.Errorf("corrupt snapshot sequence varint")
	}
	return seq, append([]byte(nil), rest[n:]...), nil
}

// snapEnvelope is the legacy JSON snapshot wrapper: snapshot bytes plus the
// WAL sequence they cover.
type snapEnvelope struct {
	Seq  uint64          `json:"seq"`
	Data json.RawMessage `json:"data"`
}
