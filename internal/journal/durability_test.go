package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// TestFsyncFailureBurnsSequenceNumber is the discriminating test for the
// duplicate-sequence bug: before the fix, Append wrote the frame, failed the
// fsync, and returned without advancing s.seq — leaving a frame with seq N on
// disk while the retry wrote a second, different frame under the same N.
// Replay then surfaced both. The fix burns the number on fsync failure, so
// the retry gets a fresh one and every frame on disk has a unique sequence.
func TestFsyncFailureBurnsSequenceNumber(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	fail := true
	s.testSyncErr = func() error {
		if fail {
			return fmt.Errorf("injected fsync failure")
		}
		return nil
	}
	if _, err := s.Append("commit", []byte(`{"attempt":1}`)); err == nil {
		t.Fatal("append survived injected fsync failure")
	}
	fail = false
	// The retry is the append the caller believes committed. Pre-fix it was
	// issued sequence 1 again; post-fix the failed attempt's number is burned.
	seq, err := s.Append("commit", []byte(`{"attempt":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("retry got seq %d, want 2 (seq 1 must stay burned)", seq)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, entries := s2.Recovered()
	seen := map[uint64]bool{}
	for _, e := range entries {
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence %d replayed: %+v", e.Seq, entries)
		}
		seen[e.Seq] = true
	}
	// The acknowledged record must be recovered under its returned number.
	if !seen[2] {
		t.Fatalf("acked seq 2 missing from replay: %+v", entries)
	}
	for _, e := range entries {
		if e.Seq == 2 && string(e.Data) != `{"attempt":2}` {
			t.Fatalf("seq 2 data = %s", e.Data)
		}
	}
}

// TestWriteFailureRestoresOffset is the discriminating test for the
// offset-rollback bug: a failed Write advances the fd offset by the bytes it
// managed to emit, and Truncate alone does not move it back. Pre-fix, the
// retry then wrote past the truncated end, leaving a zero-filled hole that
// replay read as a torn frame — silently discarding the retried record even
// though it was acknowledged (and fsynced) durable.
func TestWriteFailureRestoresOffset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	armed := true
	s.testWriteErr = func() (int, error) {
		if armed {
			armed = false
			return 3, fmt.Errorf("injected short write")
		}
		return 0, nil
	}
	if _, err := s.Append("commit", []byte(`{"attempt":1}`)); err == nil {
		t.Fatal("append survived injected write failure")
	}
	// The partial frame was truncated off, so the number was never exposed
	// and the retry reuses it.
	seq, err := s.Append("commit", []byte(`{"attempt":2}`))
	if err != nil {
		t.Fatalf("retry append: %v", err)
	}
	if seq != 1 {
		t.Fatalf("retry got seq %d, want 1 (truncate succeeded, number reusable)", seq)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().TornBytes != 0 {
		t.Fatalf("TornBytes = %d: the acked frame was written over a hole", s2.Stats().TornBytes)
	}
	_, entries := s2.Recovered()
	if len(entries) != 1 || entries[0].Seq != 1 || string(entries[0].Data) != `{"attempt":2}` {
		t.Fatalf("acked record lost or mangled on replay: %+v", entries)
	}
}

// TestUnremovablePartialFrameWedgesStore is the discriminating test for the
// wedge: when a failed Write's partial frame cannot be truncated off, replay
// will stop at that torn frame and discard everything after it — so the store
// must refuse later appends rather than acknowledge records recovery cannot
// reach. Pre-fix, the store burned the number and kept appending; those later
// acknowledged records vanished on the next Open. The wedge heals once the
// removal succeeds on a retried append.
func TestUnremovablePartialFrameWedgesStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "commit", `{"n":1}`)
	writeFail := true
	s.testWriteErr = func() (int, error) {
		if writeFail {
			writeFail = false
			return 5, fmt.Errorf("injected short write")
		}
		return 0, nil
	}
	truncFail := true
	s.testTruncErr = func() error {
		if truncFail {
			return fmt.Errorf("injected truncate failure")
		}
		return nil
	}
	if _, err := s.Append("commit", []byte(`{"n":2}`)); err == nil {
		t.Fatal("append survived injected write failure")
	}
	// The partial frame is stuck on the file: every append must now fail —
	// an acknowledged record after a torn frame is unrecoverable.
	if seq, err := s.Append("commit", []byte(`{"n":3}`)); err == nil {
		t.Fatalf("append acked (seq %d) behind an unremovable torn frame", seq)
	}
	// Truncation heals: the next append removes the partial frame, unwedges,
	// and commits durably.
	truncFail = false
	seq, err := s.Append("commit", []byte(`{"n":4}`))
	if err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if seq != 3 {
		t.Fatalf("healed append got seq %d, want 3 (seq 2 burned by the failed write)", seq)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().TornBytes != 0 {
		t.Fatalf("TornBytes = %d: torn frame survived the heal", s2.Stats().TornBytes)
	}
	_, entries := s2.Recovered()
	if len(entries) != 2 {
		t.Fatalf("recovered %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[1].Seq != 3 || string(entries[1].Data) != `{"n":4}` {
		t.Fatalf("acked post-heal record lost or mangled: %+v", entries)
	}
}

// TestWedgedStoreRefusesRotation pins the interaction between the wedge and
// segment sealing: rotating a file whose tail holds an unremoved partial
// frame would let later appends land in a segment replay can never reach
// (a torn tail voids every later file), so rotate must refuse while wedged.
func TestWedgedStoreRefusesRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustAppend(t, s, "commit", `{"n":1}`)
	s.testWriteErr = func() (int, error) { return 2, fmt.Errorf("injected short write") }
	s.testTruncErr = func() error { return fmt.Errorf("injected truncate failure") }
	if _, err := s.Append("commit", []byte(`{"n":2}`)); err == nil {
		t.Fatal("append survived injected write failure")
	}
	rotations := s.Stats().Rotations
	if err := s.rotate(); err == nil {
		t.Fatal("rotate succeeded past an unremoved partial frame")
	}
	if got := s.Stats().Rotations; got != rotations {
		t.Fatalf("Rotations moved %d -> %d while wedged", rotations, got)
	}
}

// TestDuplicateSeqReplayLastWins covers directories written by the pre-fix
// code: two intact frames carrying the same sequence number. The retried
// write is the one the caller saw succeed, so replay keeps the later frame.
func TestDuplicateSeqReplayLastWins(t *testing.T) {
	dir := t.TempDir()
	var raw []byte
	raw = appendFrame(raw, appendBinaryRecord(nil, 1, "commit", []byte(`{"try":"first"}`)))
	raw = appendFrame(raw, appendBinaryRecord(nil, 1, "commit", []byte(`{"try":"second"}`)))
	raw = appendFrame(raw, appendBinaryRecord(nil, 2, "commit", []byte(`{"n":2}`)))
	if err := os.WriteFile(filepath.Join(dir, legacyWALName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, entries := s.Recovered()
	if len(entries) != 2 {
		t.Fatalf("entries = %+v, want 2", entries)
	}
	if string(entries[0].Data) != `{"try":"second"}` {
		t.Fatalf("seq 1 resolved to %s, want the later write", entries[0].Data)
	}
	if s.Stats().DupSeqs != 1 {
		t.Fatalf("DupSeqs = %d, want 1", s.Stats().DupSeqs)
	}
	if s.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", s.Seq())
	}
}

// TestSnapshotFailureLeavesAccountingTruthful injects a failure at every
// pre-rename snapshot stage and verifies the store still reports the truth:
// the snapshot did not happen, the cadence counter still shows the backlog,
// no temp file lingers, and a subsequent snapshot succeeds cleanly.
func TestSnapshotFailureLeavesAccountingTruthful(t *testing.T) {
	for _, stage := range []string{"write", "sync", "rename"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < 3; i++ {
				mustAppend(t, s, "commit", fmt.Sprintf(`{"n":%d}`, i))
			}
			s.testSnapErr = func(at string) error {
				if at == stage {
					return fmt.Errorf("injected %s failure", at)
				}
				return nil
			}
			if err := s.WriteSnapshot([]byte(`{"state":"x"}`)); err == nil {
				t.Fatalf("snapshot survived injected %s failure", stage)
			}
			if got := s.AppendsSinceSnapshot(); got != 3 {
				t.Fatalf("pending = %d after failed snapshot, want 3", got)
			}
			if s.Stats().Snapshots != 0 {
				t.Fatalf("Snapshots = %d after failed snapshot", s.Stats().Snapshots)
			}
			if _, err := os.Stat(filepath.Join(dir, snapName+".tmp")); !os.IsNotExist(err) {
				t.Fatalf("temp snapshot left behind (stat err %v)", err)
			}
			// Recovery data must still be available for the next attempt, and
			// the store must not be wedged in "snapshotting".
			s.testSnapErr = nil
			if err := s.WriteSnapshot([]byte(`{"state":"x"}`)); err != nil {
				t.Fatalf("retry snapshot: %v", err)
			}
			if got := s.AppendsSinceSnapshot(); got != 0 {
				t.Fatalf("pending = %d after retry snapshot, want 0", got)
			}
			if s.Stats().Snapshots != 1 {
				t.Fatalf("Snapshots = %d after retry", s.Stats().Snapshots)
			}
		})
	}
}

// TestSnapshotRotateFailureStillCommits: a failure after the rename (the
// rotation) must be reported, but the accounting must already reflect the
// snapshot — it is, in fact, durable on disk.
func TestSnapshotRotateFailureStillCommits(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustAppend(t, s, "commit", `{"n":1}`)
	s.testSnapErr = func(at string) error {
		if at == "rotate" {
			return fmt.Errorf("injected rotate failure")
		}
		return nil
	}
	if err := s.WriteSnapshot([]byte(`{"state":"s1"}`)); err == nil {
		t.Fatal("rotate failure not reported")
	}
	if got := s.AppendsSinceSnapshot(); got != 0 {
		t.Fatalf("pending = %d, want 0: the snapshot is durable", got)
	}
	if s.Stats().Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1", s.Stats().Snapshots)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, _ := s2.Recovered()
	if string(snap) != `{"state":"s1"}` {
		t.Fatalf("snapshot = %s", snap)
	}
}

// TestGroupCommitSharesFsyncs arranges a deterministic group commit: the
// first appender becomes sync leader and blocks inside its fsync while two
// more appenders write their frames and queue as followers. When the leader
// finishes, one follower syncs once on behalf of both. Three durable appends,
// two fsyncs.
func TestGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testSyncErr = func() error {
		once.Do(func() {
			close(blocked)
			<-release
		})
		return nil
	}

	errs := make(chan error, 3)
	seqs := make(chan uint64, 3)
	appendOne := func(n int) {
		seq, err := s.Append("commit", []byte(fmt.Sprintf(`{"n":%d}`, n)))
		seqs <- seq
		errs <- err
	}
	go appendOne(1)
	<-blocked // leader is mid-fsync, store lock free
	go appendOne(2)
	go appendOne(3)
	// Wait for both followers' frames to hit the file before releasing the
	// leader; they are then parked waiting for the next sync window.
	for s.Seq() < 3 {
		runtime.Gosched()
	}
	close(release)
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("append: %v", err)
		}
		seen[<-seqs] = true
	}
	if len(seen) != 3 || !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("sequence numbers = %v", seen)
	}
	st := s.Stats()
	if st.Fsyncs != 2 {
		t.Fatalf("fsyncs = %d, want 2 (leader + one shared follower sync)", st.Fsyncs)
	}
	if st.GroupCommits != 1 {
		t.Fatalf("group commits = %d, want 1", st.GroupCommits)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, entries := s2.Recovered(); len(entries) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(entries))
	}
}

// TestConcurrentAppendsReplayCleanly hammers the store from many goroutines
// under Fsync and checks the invariants the race detector cannot: unique,
// gap-free sequence numbers and a full replay.
func TestConcurrentAppendsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true, SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 16
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Append("commit", []byte(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Appends != workers*perWorker {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Fsyncs > st.Appends {
		t.Fatalf("fsyncs (%d) exceed appends (%d)", st.Fsyncs, st.Appends)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, entries := s2.Recovered()
	if len(entries) != workers*perWorker {
		t.Fatalf("recovered %d entries, want %d", len(entries), workers*perWorker)
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d: sequence not gap-free", i, e.Seq)
		}
	}
}
