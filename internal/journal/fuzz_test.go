package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzFrame feeds arbitrary bytes to the frame reader: it must either decode
// a frame that re-encodes to the same bytes, or reject cleanly — never panic.
func FuzzFrame(f *testing.F) {
	f.Add(appendFrame(nil, []byte(`{"seq":1,"kind":"commit","data":{}}`)))
	f.Add(appendFrame(nil, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, n, err := readFrame(b)
		if err != nil {
			return
		}
		if n > len(b) {
			t.Fatalf("frame size %d exceeds input %d", n, len(b))
		}
		if !bytes.Equal(appendFrame(nil, payload), b[:n]) {
			t.Fatal("frame does not re-encode to itself")
		}
	})
}

// FuzzRecord feeds arbitrary payloads to the record decoder (both the JSON
// and binary branches) and checks the binary codec round-trips whatever the
// decoder accepts.
func FuzzRecord(f *testing.F) {
	f.Add(appendBinaryRecord(nil, 1, "commit", []byte(`{"a":1}`)))
	f.Add(appendBinaryRecord(nil, 1<<40, "custom", nil))
	f.Add([]byte(`{"seq":3,"kind":"commit","data":{"x":1}}`))
	f.Add([]byte{binTag})
	f.Add([]byte{binTag, 0x80})
	f.Fuzz(func(t *testing.T, payload []byte) {
		e, err := decodeRecord(payload)
		if err != nil {
			return
		}
		re, err := decodeRecord(appendBinaryRecord(nil, e.Seq, e.Kind, e.Data))
		if err != nil {
			t.Fatalf("re-encode of accepted record rejected: %v", err)
		}
		if re.Seq != e.Seq || re.Kind != e.Kind || !bytes.Equal(re.Data, e.Data) {
			t.Fatalf("binary round trip drifted: %+v -> %+v", e, re)
		}
	})
}

// FuzzWALReplay writes arbitrary bytes as a WAL file and opens the store:
// recovery must never panic and must leave an appendable log.
func FuzzWALReplay(f *testing.F) {
	var seeded []byte
	seeded = appendFrame(seeded, appendBinaryRecord(nil, 1, "commit", []byte(`{"n":1}`)))
	seeded = appendFrame(seeded, appendBinaryRecord(nil, 2, "commit", []byte(`{"n":2}`)))
	f.Add(seeded)
	f.Add(seeded[:len(seeded)-3])
	f.Add([]byte("not a wal at all"))
	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, legacyWALName), b, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir, Options{})
		if err != nil {
			return
		}
		_, entries := s.Recovered()
		prev := uint64(0)
		for _, e := range entries {
			if e.Seq <= prev {
				t.Fatalf("replay not strictly increasing: %d after %d", e.Seq, prev)
			}
			prev = e.Seq
		}
		if _, err := s.Append("commit", []byte(`{"post":"fuzz"}`)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// The directory must reopen cleanly after the repair + append.
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		s2.Close()
	})
}
