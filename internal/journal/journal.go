// Package journal is the controller's durability layer: an append-only,
// checksummed write-ahead log of commit records plus periodic full snapshots,
// stored side by side in one state directory. The paper's controller is built
// around a resource & inventory database that outlives any single control
// process (§2.2, Fig. 3); this package is that database's persistence engine.
//
// On-disk layout:
//
//	<dir>/wal.log      sequence of frames, one per committed operation
//	<dir>/snapshot.db  a single frame holding the last full state snapshot
//
// Every frame is
//
//	u32 LE payload length | u32 LE CRC32 (IEEE) of payload | payload
//
// A write that is torn mid-frame — short header, short payload, or a payload
// whose checksum does not match — invalidates that frame and everything after
// it. Open detects the torn tail, truncates the log back to the last intact
// frame, and reports how many bytes were discarded. A torn record is therefore
// discarded whole: recovery never sees a half-applied operation.
//
// Snapshots are written atomically (temp file + fsync + rename) and stamped
// with the WAL sequence number they cover. After a successful snapshot the WAL
// is reset; if the process dies between the rename and the reset, replay
// simply skips the WAL entries whose sequence numbers the snapshot already
// covers.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	walName  = "wal.log"
	snapName = "snapshot.db"

	frameHeader = 8
	// maxFrame bounds a single record so a corrupt length field cannot make
	// the reader attempt a multi-gigabyte allocation.
	maxFrame = 64 << 20
)

// Entry is one recovered WAL record.
type Entry struct {
	// Seq is the record's position in the global append sequence. Sequence
	// numbers survive snapshots: a snapshot taken at Seq=n causes entries
	// with Seq<=n to be skipped on replay.
	Seq uint64 `json:"seq"`
	// Kind names the record type (e.g. "commit").
	Kind string `json:"kind"`
	// Data is the record payload, left raw for the caller to decode.
	Data json.RawMessage `json:"data"`
}

// Options tunes a Store.
type Options struct {
	// Fsync forces a file sync after every append. Durability against OS
	// crashes costs one fsync per commit; tests and simulations leave it off.
	Fsync bool
}

// Stats counts the store's lifetime activity, including what Open recovered.
type Stats struct {
	Appends   uint64 // records appended this process
	Bytes     uint64 // WAL bytes written this process
	Fsyncs    uint64 // fsync calls issued
	Snapshots uint64 // snapshots written this process
	Replayed  int    // WAL entries recovered by Open
	Skipped   int    // WAL entries Open discarded as covered by the snapshot
	TornBytes int64  // bytes truncated from a torn WAL tail
}

// snapEnvelope wraps snapshot bytes with the WAL sequence they cover.
type snapEnvelope struct {
	Seq  uint64          `json:"seq"`
	Data json.RawMessage `json:"data"`
}

// Store is an open journal directory. It is not safe for concurrent use; the
// controller is single-threaded under the simulation kernel.
type Store struct {
	dir      string
	opts     Options
	wal      *os.File
	seq      uint64
	snapSeq  uint64
	snapData []byte
	entries  []Entry
	pending  int // appends since the last snapshot
	stats    Stats
	onAppend func(Entry)
}

// Open opens (creating if necessary) the journal in dir, loads the snapshot
// if one exists, scans the WAL, and truncates any torn tail. The recovered
// snapshot and entries are available via Recovered until the next snapshot.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.loadWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) loadSnapshot() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	payload, n, err := readFrame(raw)
	if err != nil {
		return fmt.Errorf("journal: corrupt snapshot: %w", err)
	}
	if n != len(raw) {
		return fmt.Errorf("journal: snapshot has %d trailing bytes", len(raw)-n)
	}
	var env snapEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return fmt.Errorf("journal: corrupt snapshot envelope: %w", err)
	}
	s.snapSeq = env.Seq
	s.snapData = env.Data
	s.seq = env.Seq
	return nil
}

func (s *Store) loadWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	good := 0 // byte offset just past the last intact frame
	for good < len(raw) {
		payload, n, err := readFrame(raw[good:])
		if err != nil {
			break // torn tail: this frame and everything after is void
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			break
		}
		good += n
		if e.Seq <= s.snapSeq {
			s.stats.Skipped++ // already folded into the snapshot
			continue
		}
		s.entries = append(s.entries, e)
		if e.Seq > s.seq {
			s.seq = e.Seq
		}
	}
	s.stats.Replayed = len(s.entries)
	if good < len(raw) {
		s.stats.TornBytes = int64(len(raw) - good)
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	s.wal = f
	s.pending = len(s.entries)
	return nil
}

// Recovered returns what Open found: the latest snapshot payload (nil if
// none) and the WAL entries appended after it, in order.
func (s *Store) Recovered() (snapshot []byte, entries []Entry) {
	return s.snapData, s.entries
}

// HasState reports whether the directory held any durable state at Open.
func (s *Store) HasState() bool {
	return s.snapData != nil || len(s.entries) > 0
}

// Seq returns the sequence number of the last record written or recovered.
func (s *Store) Seq() uint64 { return s.seq }

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// AppendsSinceSnapshot returns how many WAL records the latest snapshot does
// not cover — the caller's snapshot-cadence trigger.
func (s *Store) AppendsSinceSnapshot() int { return s.pending }

// SetOnAppend registers a hook that fires after every durable append. The
// crash-injection harness uses it to capture shadow state at each sequence
// point.
func (s *Store) SetOnAppend(fn func(Entry)) { s.onAppend = fn }

// Stats returns a copy of the store's counters.
func (s *Store) Stats() Stats { return s.stats }

// Append writes one record to the WAL and returns its sequence number.
func (s *Store) Append(kind string, data []byte) (uint64, error) {
	if s.wal == nil {
		return 0, fmt.Errorf("journal: store is closed")
	}
	e := Entry{Seq: s.seq + 1, Kind: kind, Data: data}
	payload, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	frame := appendFrame(nil, payload)
	if _, err := s.wal.Write(frame); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	if s.opts.Fsync {
		if err := s.wal.Sync(); err != nil {
			return 0, fmt.Errorf("journal: %w", err)
		}
		s.stats.Fsyncs++
	}
	s.seq = e.Seq
	s.pending++
	s.stats.Appends++
	s.stats.Bytes += uint64(len(frame))
	if s.onAppend != nil {
		s.onAppend(e)
	}
	return e.Seq, nil
}

// WriteSnapshot atomically replaces the snapshot with data, stamped with the
// current sequence number, then resets the WAL. If the process dies between
// the two steps, the stale WAL entries are skipped on the next Open because
// their sequence numbers are covered by the snapshot.
func (s *Store) WriteSnapshot(data []byte) error {
	if s.wal == nil {
		return fmt.Errorf("journal: store is closed")
	}
	env, err := json.Marshal(snapEnvelope{Seq: s.seq, Data: data})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	frame := appendFrame(nil, env)
	tmp := filepath.Join(s.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	s.stats.Fsyncs++
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	s.snapSeq = s.seq
	s.snapData = append([]byte(nil), data...)
	s.entries = nil
	s.pending = 0
	s.stats.Snapshots++
	return nil
}

// Close closes the WAL file. The store is unusable afterwards.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// appendFrame appends one encoded frame for payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame decodes the frame at the start of b, returning its payload and
// total encoded size. Any violation — short header, absurd length, short
// payload, checksum mismatch — is an error: the frame is torn or corrupt.
func readFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHeader {
		return nil, 0, fmt.Errorf("short header: %d bytes", len(b))
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if size > maxFrame {
		return nil, 0, fmt.Errorf("frame length %d exceeds limit", size)
	}
	if len(b) < frameHeader+int(size) {
		return nil, 0, fmt.Errorf("short payload: want %d, have %d", size, len(b)-frameHeader)
	}
	payload = b[frameHeader : frameHeader+int(size)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("checksum mismatch")
	}
	return payload, frameHeader + int(size), nil
}
