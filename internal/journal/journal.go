// Package journal is the controller's durability layer: an append-only,
// checksummed write-ahead log of commit records plus periodic full snapshots,
// stored side by side in one state directory. The paper's controller is built
// around a resource & inventory database that outlives any single control
// process (§2.2, Fig. 3); this package is that database's persistence engine.
//
// On-disk layout:
//
//	<dir>/wal-00000001.log   WAL segments, rotated on size
//	<dir>/wal-00000002.log   ...
//	<dir>/wal.log            pre-segmentation WAL (read, never written anew)
//	<dir>/snapshot.db        a single frame holding the last full state snapshot
//
// Every frame is
//
//	u32 LE payload length | u32 LE CRC32 (IEEE) of payload | payload
//
// The payload's first byte selects its encoding: '{' is the original JSON
// envelope (kept so state directories written before the binary format still
// replay), 0x01 is the binary record encoding (varint sequence number, a
// one-byte kind table, then the raw record bytes — see binary.go). Snapshots
// carry the same format byte.
//
// A write that is torn mid-frame — short header, short payload, or a payload
// whose checksum does not match — invalidates that frame and everything after
// it, across segment boundaries. Open detects the torn tail, truncates the
// segment back to the last intact frame, deletes any later segments, and
// reports how many bytes were discarded. A torn record is therefore discarded
// whole: recovery never sees a half-applied operation.
//
// Durability is group-committed: concurrent Append calls under Options.Fsync
// share fsyncs — the first writer in a window becomes the sync leader, one
// fsync covers every frame written before it ran, and the followers wake
// without issuing their own. A single sequential appender degenerates to
// exactly one fsync per append, the pre-group-commit behavior.
//
// Snapshots are streamed (temp file + fsync + rename) and stamped with the
// WAL sequence number they cover. After a successful snapshot the WAL rotates
// to a fresh segment and a background compactor unlinks the covered segments;
// if the process dies anywhere in that window, replay simply skips the WAL
// entries whose sequence numbers the snapshot already covers.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

const (
	frameHeader = 8
	// maxFrame bounds a single record so a corrupt length field cannot make
	// the reader attempt a multi-gigabyte allocation.
	maxFrame = 64 << 20
	// defaultSegmentSize rotates the WAL once the active segment holds this
	// many bytes.
	defaultSegmentSize = 4 << 20
)

// Entry is one recovered WAL record.
type Entry struct {
	// Seq is the record's position in the global append sequence. Sequence
	// numbers survive snapshots: a snapshot taken at Seq=n causes entries
	// with Seq<=n to be skipped on replay.
	Seq uint64 `json:"seq"`
	// Kind names the record type (e.g. "commit").
	Kind string `json:"kind"`
	// Data is the record payload, left raw for the caller to decode.
	Data json.RawMessage `json:"data"`
}

// Options tunes a Store.
type Options struct {
	// Fsync forces a file sync before every append returns. Durability
	// against OS crashes costs fsyncs; concurrent appenders share them via
	// group commit. Tests and simulations leave it off.
	Fsync bool
	// SegmentSize rotates the WAL to a new segment once the active one
	// reaches this many bytes (0 = 4 MiB default, negative disables
	// rotation).
	SegmentSize int64
	// LegacyJSON writes records and snapshots in the pre-binary JSON
	// encoding. Replay always accepts both formats; this exists so the
	// mixed-format compatibility tests and benchmarks can produce
	// old-format state directories on demand.
	LegacyJSON bool
}

// Stats counts the store's lifetime activity, including what Open recovered.
type Stats struct {
	Appends      uint64 // records appended this process
	Bytes        uint64 // WAL bytes written this process
	Fsyncs       uint64 // fsync calls issued
	GroupCommits uint64 // fsync batches that covered more than one append
	Snapshots    uint64 // snapshots written this process
	Rotations    uint64 // WAL segment rotations
	Compacted    uint64 // covered WAL files unlinked by the compactor
	Replayed     int    // WAL entries recovered by Open
	Skipped      int    // WAL entries Open discarded as covered by the snapshot
	DupSeqs      int    // duplicate sequence numbers resolved last-write-wins
	TornBytes    int64  // bytes truncated from a torn WAL tail
}

// sealedFile is a WAL file no longer appended to, awaiting compaction once a
// snapshot covers its highest sequence number.
type sealedFile struct {
	path   string
	maxSeq uint64
}

// Store is an open journal directory. All methods are safe for concurrent
// use; under Options.Fsync concurrent Append calls group-commit their fsyncs.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	syncCond *sync.Cond

	active     *os.File
	activePath string
	activeSize int64
	activeSeq  uint64 // last sequence number written to the active file
	segIndex   uint64 // active segment index (0 = legacy wal.log)
	sealed     []sealedFile

	seq      uint64
	snapSeq  uint64
	snapData []byte
	hasSnap  bool
	entries  []Entry
	pending  int // appends since the last snapshot
	stats    Stats
	onAppend func(Entry)

	// Group-commit state: the sync leader releases every waiter whose frame
	// its fsync covered.
	syncing     bool
	syncedSeq   uint64 // highest seq known durable
	syncFailSeq uint64 // highest seq covered by a failed fsync batch
	syncFailErr error

	snapshotting bool
	compactWG    sync.WaitGroup

	// Wedge state: non-nil wedgedErr means a failed Write left a partial
	// frame at offset wedgedAt that could not be truncated off the active
	// file. Replay stops at a torn frame and discards everything after it,
	// so while wedged the store refuses appends (retrying the removal on
	// each attempt) and refuses rotation (sealing the torn tail would void
	// any later segment on replay).
	wedgedAt  int64
	wedgedErr error

	encBuf []byte // reused frame-encoding scratch, guarded by mu

	// Test seams, nil in production. testSyncErr replaces the WAL fsync
	// result; testSnapErr injects a failure at a named snapshot stage
	// ("write", "sync", "rename", "rotate"); testWriteErr fails the next
	// WAL write after emitting only the reported number of frame bytes;
	// testTruncErr fails partial-frame truncation.
	testSyncErr  func() error
	testSnapErr  func(stage string) error
	testWriteErr func() (partial int, err error)
	testTruncErr func() error
}

// Open opens (creating if necessary) the journal in dir, loads the snapshot
// if one exists, scans the WAL segments, and truncates any torn tail. The
// recovered snapshot and entries are available via Recovered until the next
// snapshot.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	s.syncCond = sync.NewCond(&s.mu)
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.loadWAL(); err != nil {
		return nil, err
	}
	// Everything recovered from disk is as durable as it gets.
	s.syncedSeq = s.seq
	if s.hasSnap {
		// A crash may have landed between a snapshot and its compaction;
		// finish the job so covered segments do not accumulate.
		s.mu.Lock()
		s.compactCovered()
		s.mu.Unlock()
	}
	return s, nil
}

// loadWAL scans every WAL file in replay order, folds intact frames into the
// recovered entry list, and truncates the torn tail (invalidating any later
// files whole). The last surviving file becomes the append target; a fresh
// directory starts segment 1.
func (s *Store) loadWAL() error {
	files, err := walFiles(s.dir)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return s.openActive(segmentPath(s.dir, 1), 1)
	}
	activeIdx := len(files) - 1
	fileMaxes := make([]uint64, len(files))
	for i, wf := range files {
		good, fileMax, clean, err := s.scanFile(wf.path)
		if err != nil {
			return err
		}
		fileMaxes[i] = fileMax
		if clean {
			continue
		}
		// A torn frame voids that frame and everything after it: truncate
		// this file back to its last intact frame and unlink the later
		// files, which are unreachable on replay and must not survive to
		// confuse a future Open.
		if err := os.Truncate(wf.path, int64(good)); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		for _, later := range files[i+1:] {
			if st, err := os.Stat(later.path); err == nil {
				s.stats.TornBytes += st.Size()
			}
			if err := os.Remove(later.path); err != nil {
				return fmt.Errorf("journal: removing voided segment: %w", err)
			}
		}
		activeIdx = i
		break
	}
	for i := 0; i < activeIdx; i++ {
		s.sealed = append(s.sealed, sealedFile{path: files[i].path, maxSeq: fileMaxes[i]})
	}
	if err := s.openActive(files[activeIdx].path, files[activeIdx].index); err != nil {
		return err
	}
	s.stats.Replayed = len(s.entries)
	s.pending = len(s.entries)
	return nil
}

// scanFile folds one WAL file's intact frames into the store, returning the
// clean byte length, the highest sequence number seen in the file (including
// snapshot-covered frames), and whether the file ended cleanly.
func (s *Store) scanFile(path string) (good int, fileMax uint64, clean bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("journal: %w", err)
	}
	fileMax = s.seq
	for good < len(raw) {
		payload, n, err := readFrame(raw[good:])
		if err != nil {
			s.stats.TornBytes += int64(len(raw) - good)
			return good, fileMax, false, nil
		}
		e, err := decodeRecord(payload)
		if err != nil {
			s.stats.TornBytes += int64(len(raw) - good)
			return good, fileMax, false, nil
		}
		good += n
		if e.Seq > fileMax {
			fileMax = e.Seq
		}
		if e.Seq <= s.snapSeq {
			s.stats.Skipped++ // already folded into the snapshot
			continue
		}
		if e.Seq <= s.seq {
			// Duplicate sequence number: the pre-group-commit Append could
			// leave a frame on disk after a failed fsync and then retry
			// under the same number. The retried record is the one the
			// caller believes committed: last write wins.
			s.stats.DupSeqs++
			for i := len(s.entries) - 1; i >= 0; i-- {
				if s.entries[i].Seq == e.Seq {
					s.entries[i] = e
					break
				}
			}
			continue
		}
		s.entries = append(s.entries, e)
		s.seq = e.Seq
	}
	return good, fileMax, true, nil
}

// openActive opens (creating if needed) the append target positioned at its
// clean end.
func (s *Store) openActive(path string, index uint64) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	s.active = f
	s.activePath = path
	s.activeSize = size
	s.activeSeq = s.seq
	s.segIndex = index
	return nil
}

// Recovered returns what Open found: the latest snapshot payload (nil if
// none) and the WAL entries appended after it, in order. It is meaningful
// only before the first post-Open snapshot, which releases both to keep the
// store's memory bounded.
func (s *Store) Recovered() (snapshot []byte, entries []Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapData, s.entries
}

// HasState reports whether the directory held any durable state at Open.
func (s *Store) HasState() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hasSnap || len(s.entries) > 0
}

// Seq returns the sequence number of the last record written or recovered.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// AppendsSinceSnapshot returns how many WAL records the latest snapshot does
// not cover — the caller's snapshot-cadence trigger.
func (s *Store) AppendsSinceSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// SetOnAppend registers a hook that fires after every durable append, with
// the store lock held (the hook must not call back into the store). The
// crash-injection harness uses it to capture shadow state at each sequence
// point.
func (s *Store) SetOnAppend(fn func(Entry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onAppend = fn
}

// Stats returns a copy of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Append writes one record to the WAL and returns its sequence number.
//
// Error discipline: a failed append never leaves the store able to reuse a
// sequence number that might already be on disk, and never leaves the store
// able to acknowledge a later append that replay could not recover. A failed
// Write tries to truncate the partial frame back off the file and restore
// the write offset — only if both succeed is the number rolled back for
// reuse. If the partial frame cannot be provably removed, the number is
// burned and the store wedges: replay stops at a torn frame and discards
// everything after it, so accepting more appends would acknowledge records
// recovery cannot reach. Each subsequent Append retries the removal and
// unwedges the store once it succeeds. A failed fsync keeps the number
// burned: the frame's bytes are in the file, and a retry under the same
// number would replay as a duplicate.
func (s *Store) Append(kind string, data []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return 0, fmt.Errorf("journal: store is closed")
	}
	if s.wedgedErr != nil {
		if err := s.truncateActive(s.wedgedAt); err != nil {
			return 0, fmt.Errorf("journal: store wedged by unremovable partial frame (removal retried: %v): %w", err, s.wedgedErr)
		}
		s.wedgedErr = nil
	}
	seq := s.seq + 1
	frame, err := s.encodeFrame(seq, kind, data)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	preSize := s.activeSize
	n, werr := s.writeActive(frame)
	if werr != nil {
		if terr := s.truncateActive(preSize); terr == nil {
			// The partial frame is provably gone and the write offset is back
			// at the clean end of the file; the sequence number was never
			// exposed and stays available for the retry.
			return 0, fmt.Errorf("journal: %w", werr)
		}
		// Could not remove the partial frame (or could not restore the write
		// offset, which would leave a hole that reads as torn). Burn the
		// number so a retried append cannot write a duplicate, and wedge the
		// store: a frame appended after a torn one is discarded by replay, so
		// it must never be acknowledged.
		s.seq = seq
		s.activeSeq = seq
		s.activeSize += int64(n)
		s.wedgedAt = preSize
		s.wedgedErr = werr
		return 0, fmt.Errorf("journal: %w", werr)
	}
	s.seq = seq
	s.activeSeq = seq
	s.activeSize += int64(len(frame))
	s.stats.Bytes += uint64(len(frame))
	if s.opts.Fsync {
		if err := s.waitDurable(seq); err != nil {
			// The frame is written but not provably durable; the burned
			// number guarantees the retry gets a fresh one.
			return 0, fmt.Errorf("journal: %w", err)
		}
	}
	s.pending++
	s.stats.Appends++
	if s.onAppend != nil {
		s.onAppend(Entry{Seq: seq, Kind: kind, Data: data})
	}
	s.maybeRotate()
	return seq, nil
}

// writeActive writes one frame at the active file's current offset. The test
// seam simulates a short write the way a real one behaves: the partial bytes
// land in the file and advance the fd offset before the error surfaces.
// Called with mu held.
func (s *Store) writeActive(frame []byte) (int, error) {
	if s.testWriteErr != nil {
		if partial, err := s.testWriteErr(); err != nil {
			if partial > len(frame) {
				partial = len(frame)
			}
			n, _ := s.active.Write(frame[:partial])
			return n, err
		}
	}
	return s.active.Write(frame)
}

// truncateActive cuts the active file back to off and restores the write
// offset to match — Truncate alone does not move the fd offset, and a write
// issued past the truncated end would leave a zero-filled hole that replay
// reads as a torn frame, discarding every record after it. Called with mu
// held.
func (s *Store) truncateActive(off int64) error {
	if s.testTruncErr != nil {
		if err := s.testTruncErr(); err != nil {
			return err
		}
	}
	if err := s.active.Truncate(off); err != nil {
		return err
	}
	if _, err := s.active.Seek(off, io.SeekStart); err != nil {
		return err
	}
	s.activeSize = off
	return nil
}

// waitDurable blocks until seq is covered by a successful fsync, electing
// this goroutine sync leader if no fsync is in flight. Called and returns
// with mu held.
func (s *Store) waitDurable(seq uint64) error {
	for {
		if s.syncedSeq >= seq {
			return nil
		}
		if s.syncFailSeq >= seq {
			return s.syncFailErr
		}
		if !s.syncing {
			s.syncing = true
			top := s.activeSeq // every frame written to the active file so far
			f := s.active
			hook := s.testSyncErr
			prevSynced := s.syncedSeq
			s.mu.Unlock()
			err := f.Sync()
			if hook != nil {
				err = hook()
			}
			s.mu.Lock()
			s.syncing = false
			s.stats.Fsyncs++
			if top > prevSynced+1 {
				s.stats.GroupCommits++
			}
			if err == nil {
				if top > s.syncedSeq {
					s.syncedSeq = top
				}
			} else {
				if top > s.syncFailSeq {
					s.syncFailSeq = top
				}
				s.syncFailErr = err
			}
			s.syncCond.Broadcast()
			continue
		}
		s.syncCond.Wait()
	}
}

// encodeFrame builds the on-disk frame for one record in the store's reused
// scratch buffer. Binary encoding allocates nothing once the buffer has
// grown to the workload's frame size.
func (s *Store) encodeFrame(seq uint64, kind string, data []byte) ([]byte, error) {
	b := append(s.encBuf[:0], 0, 0, 0, 0, 0, 0, 0, 0) // header hole
	if s.opts.LegacyJSON {
		payload, err := json.Marshal(Entry{Seq: seq, Kind: kind, Data: data})
		if err != nil {
			return nil, err
		}
		b = append(b, payload...)
	} else {
		b = appendBinaryRecord(b, seq, kind, data)
	}
	size := len(b) - frameHeader
	if size > maxFrame {
		return nil, fmt.Errorf("record of %d bytes exceeds the %d byte frame limit", size, maxFrame)
	}
	binary.LittleEndian.PutUint32(b[0:4], uint32(size))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[frameHeader:]))
	s.encBuf = b
	return b, nil
}

// Close waits for any background compaction, then closes the WAL file. The
// store is unusable afterwards.
func (s *Store) Close() error {
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.syncing {
		s.syncCond.Wait()
	}
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}

// appendFrame appends one encoded frame for payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame decodes the frame at the start of b, returning its payload and
// total encoded size. Any violation — short header, absurd length, short
// payload, checksum mismatch — is an error: the frame is torn or corrupt.
func readFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHeader {
		return nil, 0, fmt.Errorf("short header: %d bytes", len(b))
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if size > maxFrame {
		return nil, 0, fmt.Errorf("frame length %d exceeds limit", size)
	}
	if len(b) < frameHeader+int(size) {
		return nil, 0, fmt.Errorf("short payload: want %d, have %d", size, len(b)-frameHeader)
	}
	payload = b[frameHeader : frameHeader+int(size)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, fmt.Errorf("checksum mismatch")
	}
	return payload, frameHeader + int(size), nil
}
