package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, s *Store, kind, data string) uint64 {
	t.Helper()
	seq, err := s.Append(kind, []byte(data))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return seq
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		seq := mustAppend(t, s, "commit", fmt.Sprintf(`{"n":%d}`, i))
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, entries := s2.Recovered()
	if snap != nil {
		t.Fatalf("unexpected snapshot: %s", snap)
	}
	if len(entries) != 10 {
		t.Fatalf("recovered %d entries, want 10", len(entries))
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) || e.Kind != "commit" {
			t.Fatalf("entry %d = %+v", i, e)
		}
		want := fmt.Sprintf(`{"n":%d}`, i)
		if string(e.Data) != want {
			t.Fatalf("entry %d data = %s, want %s", i, e.Data, want)
		}
	}
	if s2.Seq() != 10 {
		t.Fatalf("seq = %d, want 10", s2.Seq())
	}
	if !s2.HasState() {
		t.Fatal("HasState = false after recovery")
	}
}

func TestSnapshotSkipsCoveredEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "commit", `{"n":1}`)
	mustAppend(t, s, "commit", `{"n":2}`)
	if err := s.WriteSnapshot([]byte(`{"state":"s2"}`)); err != nil {
		t.Fatal(err)
	}
	if s.AppendsSinceSnapshot() != 0 {
		t.Fatalf("pending = %d after snapshot", s.AppendsSinceSnapshot())
	}
	mustAppend(t, s, "commit", `{"n":3}`)
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, entries := s2.Recovered()
	if string(snap) != `{"state":"s2"}` {
		t.Fatalf("snapshot = %s", snap)
	}
	if len(entries) != 1 || entries[0].Seq != 3 {
		t.Fatalf("entries = %+v, want just seq 3", entries)
	}
	if s2.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", s2.Seq())
	}
}

// TestSnapshotCrashBeforeWALReset simulates dying between the snapshot rename
// and the WAL rotation/compaction: the stale WAL entries must be skipped on
// replay because the snapshot covers their sequence numbers.
func TestSnapshotCrashBeforeWALReset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "commit", `{"n":1}`)
	mustAppend(t, s, "commit", `{"n":2}`)
	// Preserve the WAL as it is before the snapshot rotates away from it.
	walPath := s.activePath
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot([]byte(`{"state":"s2"}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Put the stale pre-snapshot WAL back: exactly the crash window.
	if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, entries := s2.Recovered()
	if string(snap) != `{"state":"s2"}` {
		t.Fatalf("snapshot = %s", snap)
	}
	if len(entries) != 0 {
		t.Fatalf("stale covered entries replayed: %+v", entries)
	}
	if s2.Stats().Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", s2.Stats().Skipped)
	}
	// New appends must continue the sequence past the snapshot.
	if seq := mustAppend(t, s2, "commit", `{"n":3}`); seq != 3 {
		t.Fatalf("next seq = %d, want 3", seq)
	}
}

// TestTornTailTruncatedAtEveryOffset appends a few records, then truncates
// the WAL at every possible byte offset. Recovery must keep exactly the
// records whose frames survive whole and discard the torn tail cleanly.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	base := t.TempDir()
	ref, err := Open(filepath.Join(base, "ref"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ends []int // cumulative frame end offsets
	total := 0
	for i := 0; i < 5; i++ {
		mustAppend(t, ref, "commit", fmt.Sprintf(`{"n":%d}`, i))
		b, err := os.ReadFile(ref.activePath)
		if err != nil {
			t.Fatal(err)
		}
		total = len(b)
		ends = append(ends, total)
	}
	walBytes, err := os.ReadFile(ref.activePath)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()

	intactAt := func(cut int) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= total; cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%04d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		// Written under the legacy name: the cut trial doubles as coverage of
		// the pre-segmentation read path.
		if err := os.WriteFile(filepath.Join(dir, legacyWALName), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		_, entries := s.Recovered()
		want := intactAt(cut)
		if len(entries) != want {
			t.Fatalf("cut %d: recovered %d entries, want %d", cut, len(entries), want)
		}
		for i, e := range entries {
			if wantData := fmt.Sprintf(`{"n":%d}`, i); string(e.Data) != wantData {
				t.Fatalf("cut %d entry %d: %s", cut, i, e.Data)
			}
		}
		// The file must have been truncated back to the last intact frame,
		// so a fresh append produces a clean log.
		mustAppend(t, s, "commit", `{"n":99}`)
		s.Close()
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		_, entries2 := s2.Recovered()
		if len(entries2) != want+1 {
			t.Fatalf("cut %d reopen: %d entries, want %d", cut, len(entries2), want+1)
		}
		s2.Close()
	}
}

// TestCorruptPayloadDetected flips a byte inside a committed frame's payload;
// the checksum must reject it and recovery must stop there.
func TestCorruptPayloadDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "commit", `{"n":0}`)
	walPath := s.activePath
	end1, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "commit", `{"n":1}`)
	s.Close()

	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(end1)+frameHeader+2] ^= 0xff // corrupt second frame's payload
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, entries := s2.Recovered()
	if len(entries) != 1 || string(entries[0].Data) != `{"n":0}` {
		t.Fatalf("entries = %+v, want just record 0", entries)
	}
	if s2.Stats().TornBytes == 0 {
		t.Fatal("torn bytes not reported")
	}
}

func TestAbsurdLengthRejected(t *testing.T) {
	dir := t.TempDir()
	frame := make([]byte, frameHeader)
	frame[0], frame[1], frame[2], frame[3] = 0xff, 0xff, 0xff, 0x7f
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, legacyWALName), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, entries := s.Recovered(); len(entries) != 0 {
		t.Fatalf("entries = %+v", entries)
	}
	if s.Stats().TornBytes != frameHeader {
		t.Fatalf("torn bytes = %d, want %d", s.Stats().TornBytes, frameHeader)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, "commit", `{"n":1}`)
	if err := s.WriteSnapshot([]byte(`{"state":1}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, snapName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestOnAppendHook(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var seen []uint64
	s.SetOnAppend(func(e Entry) { seen = append(seen, e.Seq) })
	mustAppend(t, s, "commit", `{}`)
	mustAppend(t, s, "commit", `{}`)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("hook saw %v", seen)
	}
}

func TestFsyncCounted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustAppend(t, s, "commit", `{}`)
	if s.Stats().Fsyncs != 1 {
		t.Fatalf("fsyncs = %d, want 1", s.Stats().Fsyncs)
	}
}

func TestFrameCodec(t *testing.T) {
	payload := []byte(`{"hello":"world"}`)
	frame := appendFrame(nil, payload)
	got, n, err := readFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: n=%d payload=%s", n, got)
	}
	// Two frames back to back decode in order.
	two := appendFrame(frame, []byte(`{"x":2}`))
	p1, n1, err := readFrame(two)
	if err != nil || !bytes.Equal(p1, payload) {
		t.Fatalf("frame 1: %s %v", p1, err)
	}
	p2, _, err := readFrame(two[n1:])
	if err != nil || string(p2) != `{"x":2}` {
		t.Fatalf("frame 2: %s %v", p2, err)
	}
}

func TestEntryJSONStable(t *testing.T) {
	e := Entry{Seq: 7, Kind: "commit", Data: json.RawMessage(`{"a":1}`)}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(e)
	if !bytes.Equal(b, b2) {
		t.Fatal("entry marshal not stable")
	}
}
