//go:build race

package journal

const raceEnabled = true
