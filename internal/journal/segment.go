package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	legacyWALName = "wal.log"
	segPrefix     = "wal-"
	segSuffix     = ".log"
	snapName      = "snapshot.db"
)

// walFile is one WAL file on disk; index 0 is the legacy single-file WAL,
// which always sorts first (it predates every segment).
type walFile struct {
	path  string
	index uint64
}

// segmentPath names segment n in dir.
func segmentPath(dir string, n uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix))
}

// walFiles lists dir's WAL files in replay order: the legacy wal.log first
// if present, then segments by ascending index.
func walFiles(dir string) ([]walFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []walFile
	for _, ent := range ents {
		name := ent.Name()
		if name == legacyWALName {
			out = append(out, walFile{path: filepath.Join(dir, name), index: 0})
			continue
		}
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		n, err := strconv.ParseUint(numPart, 10, 64)
		if err != nil || n == 0 {
			continue // not a segment of ours
		}
		out = append(out, walFile{path: filepath.Join(dir, name), index: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out, nil
}

// WALFiles returns the directory's WAL file paths in replay order — the
// legacy wal.log first if present, then segments by index. The crash harness
// uses it to treat the segmented log as one byte stream.
func WALFiles(dir string) ([]string, error) {
	files, err := walFiles(dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(files))
	for _, f := range files {
		out = append(out, f.path)
	}
	return out, nil
}

// maybeRotate seals the active file and opens the next segment once the
// active one is full. Called with mu held. Under Fsync the rotation waits for
// quiescence — never closing a file another appender still needs synced —
// by simply deferring to a later append.
func (s *Store) maybeRotate() {
	limit := s.opts.SegmentSize
	if limit < 0 {
		return
	}
	if limit == 0 {
		limit = defaultSegmentSize
	}
	if s.activeSize < limit {
		return
	}
	if s.opts.Fsync && (s.syncing || s.syncedSeq < s.activeSeq) {
		return
	}
	s.rotate() //lint:allow errcheck rotation failure leaves the oversized segment active; the next append retries
}

// rotate seals the active file and starts the next segment. Called with mu
// held. On failure the current file stays active and the caller's append is
// unaffected.
func (s *Store) rotate() error {
	if s.wedgedErr != nil {
		// Sealing a file whose tail holds an unremoved partial frame would
		// let later appends land in a segment replay can never reach: a torn
		// tail voids every later file. Stay on the wedged file until the
		// partial frame is truncated off.
		return fmt.Errorf("journal: cannot rotate past an unremoved partial frame: %w", s.wedgedErr)
	}
	next := s.segIndex + 1
	if s.segIndex == 0 {
		// The legacy wal.log is index 0; its first rotation starts the
		// segment numbering.
		next = 1
	}
	path := segmentPath(s.dir, next)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotating segment: %w", err)
	}
	old, oldPath, oldSeq := s.active, s.activePath, s.activeSeq
	old.Close() //lint:allow errcheck file is sealed read-only from here; replay re-verifies every frame
	s.sealed = append(s.sealed, sealedFile{path: oldPath, maxSeq: oldSeq})
	s.active = f
	s.activePath = path
	s.activeSize = 0
	s.activeSeq = s.seq
	s.segIndex = next
	s.stats.Rotations++
	return nil
}

// compactCovered claims every sealed file the snapshot covers and unlinks
// them on a background goroutine — no appender or reader waits on the
// deletions. Called with mu held.
func (s *Store) compactCovered() {
	var claim []sealedFile
	keep := s.sealed[:0]
	for _, sf := range s.sealed {
		if sf.maxSeq <= s.snapSeq {
			claim = append(claim, sf)
		} else {
			keep = append(keep, sf)
		}
	}
	s.sealed = keep
	if len(claim) == 0 {
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		removed := uint64(0)
		for _, sf := range claim {
			if err := os.Remove(sf.path); err == nil {
				removed++
			}
			// A failed unlink is harmless: the file's entries are covered
			// by the snapshot, so a future Open skips them and its own
			// compactor retries the removal.
		}
		s.mu.Lock()
		s.stats.Compacted += removed
		s.mu.Unlock()
	}()
}

// CompactWait blocks until any in-flight background compaction finishes —
// test and harness plumbing, so file listings are deterministic.
func (s *Store) CompactWait() { s.compactWG.Wait() }
