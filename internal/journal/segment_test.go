package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func walFileNames(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(paths))
	for _, p := range paths {
		names = append(names, filepath.Base(p))
	}
	return names
}

// TestSegmentRotation forces rotation with a tiny segment size and verifies
// the log is spread over multiple files that replay in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		mustAppend(t, s, "commit", fmt.Sprintf(`{"n":%d}`, i))
	}
	if s.Stats().Rotations == 0 {
		t.Fatal("no rotations with a 64-byte segment limit")
	}
	if len(walFileNames(t, dir)) < 2 {
		t.Fatalf("wal files = %v, want several", walFileNames(t, dir))
	}
	s.Close()

	s2, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, entries := s2.Recovered()
	if len(entries) != n {
		t.Fatalf("recovered %d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d seq = %d", i, e.Seq)
		}
	}
	// Appends continue into the restored active segment.
	if seq := mustAppend(t, s2, "commit", `{"more":true}`); seq != n+1 {
		t.Fatalf("next seq = %d, want %d", seq, n+1)
	}
}

// TestCompactionRemovesCoveredSegments: after a snapshot, sealed segments
// whose records the snapshot covers are unlinked in the background; the
// directory converges to snapshot + active segment.
func TestCompactionRemovesCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, s, "commit", fmt.Sprintf(`{"n":%d}`, i))
	}
	before := len(walFileNames(t, dir))
	if before < 2 {
		t.Fatalf("want several segments before snapshot, got %d", before)
	}
	if err := s.WriteSnapshot([]byte(`{"state":"s20"}`)); err != nil {
		t.Fatal(err)
	}
	s.CompactWait()
	after := walFileNames(t, dir)
	if len(after) != 1 {
		t.Fatalf("wal files after compaction = %v, want just the active segment", after)
	}
	if s.Stats().Compacted == 0 {
		t.Fatal("compacted counter not advanced")
	}
	s.Close()

	s2, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, entries := s2.Recovered()
	if string(snap) != `{"state":"s20"}` {
		t.Fatalf("snapshot = %s", snap)
	}
	if len(entries) != 0 {
		t.Fatalf("entries = %+v", entries)
	}
	if s2.Seq() != 20 {
		t.Fatalf("seq = %d, want 20", s2.Seq())
	}
}

// TestOpenFinishesInterruptedCompaction: covered segments left behind by a
// crash between snapshot and compaction are removed by the next Open.
func TestOpenFinishesInterruptedCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, s, "commit", fmt.Sprintf(`{"n":%d}`, i))
	}
	// Stash copies of the sealed segments, snapshot, then put them back:
	// exactly the state a crash mid-compaction leaves.
	stash := map[string][]byte{}
	for _, p := range walFileNames(t, dir) {
		b, err := os.ReadFile(filepath.Join(dir, p))
		if err != nil {
			t.Fatal(err)
		}
		stash[p] = b
	}
	if err := s.WriteSnapshot([]byte(`{"state":"s20"}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	for name, b := range stash {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Skipped; got != 20 {
		t.Fatalf("skipped = %d, want 20", got)
	}
	s2.CompactWait()
	left := walFileNames(t, dir)
	if len(left) != 1 {
		t.Fatalf("wal files after recovery compaction = %v", left)
	}
	s2.Close()
}

// TestTornTailVoidsLaterSegments: a torn frame invalidates everything after
// it, including whole later segments.
func TestTornTailVoidsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, s, "commit", fmt.Sprintf(`{"n":%d}`, i))
	}
	files := walFileNames(t, dir)
	if len(files) < 3 {
		t.Fatalf("want >=3 segments, got %v", files)
	}
	s.Close()
	// Tear the middle of the second segment.
	target := filepath.Join(dir, files[1])
	b, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(target, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	left := walFileNames(t, dir)
	if len(left) != 2 {
		t.Fatalf("surviving wal files = %v, want the first two", left)
	}
	if s2.Stats().TornBytes == 0 {
		t.Fatal("torn bytes not accounted")
	}
	_, entries := s2.Recovered()
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d seq %d: replay not contiguous", i, e.Seq)
		}
	}
	// The torn segment is the append target again; new appends extend it.
	mustAppend(t, s2, "commit", `{"recovered":true}`)
}

// TestMixedFormatDirectory: a directory can carry a legacy JSON snapshot and
// JSON WAL records alongside binary records appended after an upgrade — one
// log, two encodings, one replay.
func TestMixedFormatDirectory(t *testing.T) {
	dir := t.TempDir()
	legacy, err := Open(dir, Options{LegacyJSON: true})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, legacy, "commit", `{"era":"json","n":1}`)
	mustAppend(t, legacy, "commit", `{"era":"json","n":2}`)
	if err := legacy.WriteSnapshot([]byte(`{"state":"legacy"}`)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, legacy, "commit", `{"era":"json","n":3}`)
	legacy.Close()
	// The snapshot on disk must actually be the legacy encoding.
	rawSnap, err := os.ReadFile(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	if rawSnap[frameHeader] != '{' {
		t.Fatalf("legacy snapshot starts with %#x, want '{'", rawSnap[frameHeader])
	}

	// Upgrade: reopen in the default binary format and keep appending.
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, entries := s.Recovered()
	if string(snap) != `{"state":"legacy"}` {
		t.Fatalf("snapshot = %s", snap)
	}
	if len(entries) != 1 || entries[0].Seq != 3 {
		t.Fatalf("entries = %+v", entries)
	}
	mustAppend(t, s, "commit", `{"era":"binary","n":4}`)
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, entries2 := s2.Recovered()
	if len(entries2) != 2 {
		t.Fatalf("entries = %+v", entries2)
	}
	if string(entries2[0].Data) != `{"era":"json","n":3}` || string(entries2[1].Data) != `{"era":"binary","n":4}` {
		t.Fatalf("mixed replay data = %s / %s", entries2[0].Data, entries2[1].Data)
	}
}

// TestBinaryRecordRoundTrip pins the binary record codec, including kinds
// outside the one-byte table.
func TestBinaryRecordRoundTrip(t *testing.T) {
	cases := []struct {
		seq  uint64
		kind string
		data string
	}{
		{1, "commit", `{"a":1}`},
		{1 << 40, "commit", ``},
		{7, "custom-kind", `{"weird":true}`},
		{8, "", `x`},
		{9, strings.Repeat("k", 300), `{"long":"kind"}`},
	}
	for _, c := range cases {
		payload := appendBinaryRecord(nil, c.seq, c.kind, []byte(c.data))
		e, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if e.Seq != c.seq || e.Kind != c.kind || string(e.Data) != c.data {
			t.Fatalf("round trip %+v -> %+v", c, e)
		}
	}
}
