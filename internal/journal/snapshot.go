package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
)

func (s *Store) loadSnapshot() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	payload, n, err := readFrame(raw)
	if err != nil {
		return fmt.Errorf("journal: corrupt snapshot: %w", err)
	}
	if n != len(raw) {
		return fmt.Errorf("journal: snapshot has %d trailing bytes", len(raw)-n)
	}
	seq, data, err := decodeSnapshot(payload)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	s.snapSeq = seq
	s.snapData = data
	s.hasSnap = true
	s.seq = seq
	return nil
}

// SnapshotWriter streams one snapshot payload into the journal. Bytes flow
// straight through a CRC accumulator into the temp file — the store never
// holds the whole snapshot in memory, which is what lets the controller
// serialize its state record by record instead of one giant marshal.
// Commit finalizes the frame header, fsyncs, renames the temp file into
// place, rotates the WAL, and kicks the background compactor.
type SnapshotWriter struct {
	s    *Store
	f    *os.File
	bw   *bufio.Writer
	crc  hash.Hash32
	n    int64 // payload bytes, including the format preamble
	seq  uint64
	tmp  string
	lgcy bool
	done bool
}

// BeginSnapshot starts a streamed snapshot covering every record appended so
// far. Only one snapshot may be in flight at a time.
func (s *Store) BeginSnapshot() (*SnapshotWriter, error) {
	s.mu.Lock()
	if s.active == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("journal: store is closed")
	}
	if s.snapshotting {
		s.mu.Unlock()
		return nil, fmt.Errorf("journal: snapshot already in progress")
	}
	s.snapshotting = true
	seq := s.seq
	legacy := s.opts.LegacyJSON
	s.mu.Unlock()

	tmp := filepath.Join(s.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		s.endSnapshot()
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := &SnapshotWriter{s: s, f: f, bw: bufio.NewWriter(f), crc: crc32.NewIEEE(), seq: seq, tmp: tmp, lgcy: legacy}
	// Reserve the frame header; Commit patches it once the payload length
	// and checksum are known.
	var hole [frameHeader]byte
	if _, err := w.bw.Write(hole[:]); err != nil {
		return nil, w.fail(err)
	}
	var preamble []byte
	if legacy {
		preamble = []byte(fmt.Sprintf(`{"seq":%d,"data":`, seq))
	} else {
		preamble = appendBinarySnapshotPreamble(nil, seq)
	}
	if _, err := w.payload(preamble); err != nil {
		return nil, w.fail(err)
	}
	return w, nil
}

func (s *Store) endSnapshot() {
	s.mu.Lock()
	s.snapshotting = false
	s.mu.Unlock()
}

// payload writes p into the frame payload, feeding the checksum.
func (w *SnapshotWriter) payload(p []byte) (int, error) {
	n, err := w.bw.Write(p)
	w.crc.Write(p[:n]) //lint:allow errcheck hash.Hash never errors
	w.n += int64(n)
	if err != nil {
		return n, fmt.Errorf("journal: %w", err)
	}
	return n, nil
}

// Write streams snapshot bytes. In legacy mode the bytes land inside the
// JSON envelope's data field, so they must form one valid JSON value.
func (w *SnapshotWriter) Write(p []byte) (int, error) {
	if w.done {
		return 0, fmt.Errorf("journal: snapshot writer is finished")
	}
	return w.payload(p)
}

// fail abandons the snapshot, removing the temp file. The store's snapshot
// accounting is untouched: nothing durable changed, so the cadence trigger
// and stats keep describing the last snapshot that actually exists.
func (w *SnapshotWriter) fail(err error) error {
	if w.done {
		return err
	}
	w.done = true
	w.f.Close()      //lint:allow errcheck already failing
	os.Remove(w.tmp) //lint:allow errcheck best effort cleanup
	w.s.endSnapshot()
	return err
}

// Abort abandons the snapshot and removes the temp file.
func (w *SnapshotWriter) Abort() {
	w.fail(nil) //lint:allow errcheck nothing more to surface
}

// Commit finalizes the snapshot: patch the frame header, fsync, rename into
// place, then (now that the snapshot is durable) fold it into the store's
// accounting, rotate the WAL and compact the covered segments.
//
// Accounting is committed exactly when the rename is: a failure before it
// leaves stats, cadence and sequence bookkeeping describing the previous
// snapshot; a failure after it (rotation) is reported but the bookkeeping
// already reflects the snapshot that is, in fact, on disk.
func (w *SnapshotWriter) Commit() error {
	if w.done {
		return fmt.Errorf("journal: snapshot writer is finished")
	}
	if w.lgcy {
		if _, err := w.payload([]byte{'}'}); err != nil {
			return w.fail(err)
		}
	}
	if err := w.injected("write"); err != nil {
		return w.fail(err)
	}
	if err := w.bw.Flush(); err != nil {
		return w.fail(fmt.Errorf("journal: %w", err))
	}
	if w.n > maxFrame {
		return w.fail(fmt.Errorf("journal: snapshot of %d bytes exceeds the %d byte frame limit", w.n, maxFrame))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(w.n))
	binary.LittleEndian.PutUint32(hdr[4:8], w.crc.Sum32())
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return w.fail(fmt.Errorf("journal: %w", err))
	}
	err := w.f.Sync()
	if herr := w.injected("sync"); herr != nil {
		err = herr
	}
	if err != nil {
		return w.fail(fmt.Errorf("journal: %w", err))
	}
	if err := w.f.Close(); err != nil {
		return w.fail(fmt.Errorf("journal: %w", err))
	}
	err = os.Rename(w.tmp, filepath.Join(w.s.dir, snapName))
	if herr := w.injected("rename"); herr != nil {
		err = herr
	}
	if err != nil {
		w.done = true
		os.Remove(w.tmp) //lint:allow errcheck best effort cleanup
		w.s.endSnapshot()
		return fmt.Errorf("journal: %w", err)
	}
	w.done = true

	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotting = false
	s.stats.Fsyncs++
	s.stats.Snapshots++
	s.snapSeq = w.seq
	s.hasSnap = true
	// Recovered's view is superseded; release it so a long-lived store's
	// memory stays bounded by the live WAL tail.
	s.snapData = nil
	s.entries = nil
	s.pending = int(s.seq - w.seq)
	var rerr error
	if s.activeSize > 0 && !(s.opts.Fsync && (s.syncing || s.syncedSeq < s.activeSeq)) {
		rerr = s.rotate()
	}
	if herr := w.injected("rotate"); herr != nil {
		rerr = herr
	}
	s.compactCovered()
	return rerr
}

// injected consults the store's snapshot fault-injection seam.
func (w *SnapshotWriter) injected(stage string) error {
	if w.s.testSnapErr == nil {
		return nil
	}
	return w.s.testSnapErr(stage)
}

// WriteSnapshot atomically replaces the snapshot with data, stamped with the
// current sequence number. Convenience wrapper over the streaming writer for
// callers that already hold the bytes.
func (s *Store) WriteSnapshot(data []byte) error {
	w, err := s.BeginSnapshot()
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return err
	}
	return w.Commit()
}
