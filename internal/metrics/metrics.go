// Package metrics provides the small statistics and table-formatting toolkit
// shared by the benchmark harness, the examples and the HTTP API: sample
// summaries (mean/stddev/percentiles) and aligned text tables matching the
// way the paper reports its results.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Sample accumulates float64 observations.
type Sample struct {
	vals []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.vals = append(s.vals, v) }

// AddDuration appends a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the sample standard deviation (0 for n < 2).
func (s *Sample) Stddev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation; 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// MeanDuration returns the mean as a duration (observations in seconds).
func (s *Sample) MeanDuration() time.Duration {
	return time.Duration(s.Mean() * float64(time.Second))
}

// Table builds an aligned text table in the style of the paper's tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	if len(t.headers) > 0 {
		fmt.Fprintln(w, strings.Join(t.headers, "\t"))
		underline := make([]string, len(t.headers))
		for i, h := range t.headers {
			underline[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(w, strings.Join(underline, "\t"))
	}
	for _, r := range t.rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

// Series is a named (x, y) sequence — a figure's data line.
type Series struct {
	Name string
	X, Y []float64
}

// Point appends one point.
func (s *Series) Point(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as aligned x/y pairs.
func (s *Series) String() string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "%s\n", s.Name)
	}
	for i := range s.X {
		fmt.Fprintf(&b, "  %12.4g  %12.4g\n", s.X[i], s.Y[i])
	}
	return b.String()
}
