package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleOf(vals ...float64) *Sample {
	s := &Sample{}
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

func TestSampleBasics(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5)
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Stddev = %v", s.Stddev())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Errorf("Median = %v", s.Median())
	}
}

func TestEmptySample(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample stats not zero")
	}
}

func TestPercentiles(t *testing.T) {
	s := sampleOf(10, 20, 30, 40)
	if got := s.Percentile(0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(50); got != 25 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(-5); got != 10 {
		t.Errorf("p<0 = %v", got)
	}
	if got := s.Percentile(200); got != 40 {
		t.Errorf("p>100 = %v", got)
	}
}

func TestDurations(t *testing.T) {
	s := &Sample{}
	s.AddDuration(10 * time.Second)
	s.AddDuration(20 * time.Second)
	if s.MeanDuration() != 15*time.Second {
		t.Errorf("MeanDuration = %v", s.MeanDuration())
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := &Sample{}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := s.Percentile(p1), s.Percentile(p2)
		return v1 <= v2 && v1 >= s.Min() && v2 <= s.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		s := &Sample{}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-6 && s.Mean() <= s.Max()+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMedianIsMiddle(t *testing.T) {
	vals := []float64{7, 1, 9, 3, 5}
	s := sampleOf(vals...)
	sort.Float64s(vals)
	if s.Median() != vals[2] {
		t.Errorf("Median = %v, want %v", s.Median(), vals[2])
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 2: establishment vs hops", "Path length (hops)", "Time (s)")
	tb.Row(1, 62.48)
	tb.Row(2, 65.67)
	tb.Row(3, 70.94)
	if tb.NumRows() != 3 {
		t.Errorf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"Table 2", "Path length", "62.48", "70.94", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + underline + 3 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableWithoutTitleOrHeaders(t *testing.T) {
	tb := NewTable("")
	tb.Row("a", "b")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Error("headerless table has underline")
	}
	if !strings.Contains(out, "a") {
		t.Error("row missing")
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "blocking vs load"}
	s.Point(0.1, 0.001)
	s.Point(0.5, 0.02)
	out := s.String()
	if !strings.Contains(out, "blocking vs load") || !strings.Contains(out, "0.001") {
		t.Errorf("series output:\n%s", out)
	}
	if len(s.X) != 2 || len(s.Y) != 2 {
		t.Error("points not recorded")
	}
}
