package obs

import (
	"fmt"
	"io"
	"sort"
)

// injectLabel prepends key="val" to a rendered label block.
func injectLabel(labels, key, val string) string {
	head := fmt.Sprintf("{%s=%q", key, val)
	if labels == "" {
		return head + "}"
	}
	return head + "," + labels[1:]
}

// WriteMergedPrometheus exports several registries as one Prometheus text
// stream, distinguishing their samples with an injected label (e.g.
// shard="2"). Families sharing a name across registries are folded into one
// HELP/TYPE header; within a family, samples appear registry by registry in
// the given order, children in label order — deterministic, like
// WritePrometheus. Registries and labelVals pair up by index.
func WriteMergedPrometheus(w io.Writer, labelKey string, labelVals []string, regs []*Registry) error {
	if len(labelVals) != len(regs) {
		return fmt.Errorf("obs: %d label values for %d registries", len(labelVals), len(regs))
	}
	seen := map[string]bool{}
	var names []string
	for _, r := range regs {
		for _, name := range r.names {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		headerDone := false
		for ri, r := range regs {
			f, ok := r.families[name]
			if !ok {
				continue
			}
			if !headerDone {
				headerDone = true
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.kind); err != nil {
					return err
				}
			}
			for _, i := range sortedChildren(f) {
				ch := f.children[i]
				labels := injectLabel(ch.labels, labelKey, labelVals[ri])
				switch {
				case ch.h != nil:
					h := ch.h
					cum := uint64(0)
					for bi, bound := range h.bounds {
						cum += h.counts[bi]
						le := fmtFloat(bound)
						if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(labels, le), cum); err != nil {
							return err
						}
					}
					cum += h.counts[len(h.bounds)]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(labels, "+Inf"), cum); err != nil {
						return err
					}
					if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
						name, labels, fmtFloat(h.sum), name, labels, h.n); err != nil {
						return err
					}
				case ch.fn != nil:
					if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(ch.fn())); err != nil {
						return err
					}
				case ch.c != nil:
					if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(ch.c.Value())); err != nil {
						return err
					}
				case ch.g != nil:
					if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, fmtFloat(ch.g.Value())); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
