package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"griphon/internal/sim"
)

func TestSpanLifecycle(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)

	root := tr.Start(SpanRef{}, "op:setup")
	root.SetConn("C0000", "acme", "dwdm")
	k.After(10*time.Second, func() {})

	child := tr.StartTrack(root, "ems-session", "roadm-ems")
	k.Step() // advance to 10 s
	child.EndErr(errors.New("boom"))
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.Name != "op:setup" || r.Track != DefaultTrack || r.Parent != 0 {
		t.Errorf("root = %+v", r)
	}
	if r.Conn != "C0000" || r.Customer != "acme" || r.Layer != "dwdm" {
		t.Errorf("root attrs = %+v", r)
	}
	if r.Duration() != 10*time.Second || r.Outcome != "ok" {
		t.Errorf("root dur=%v outcome=%q", r.Duration(), r.Outcome)
	}
	if c.Parent != r.ID || c.Track != "roadm-ems" || c.Outcome != "boom" {
		t.Errorf("child = %+v", c)
	}
	if c.Start != 0 || c.End != sim.Time(10*time.Second) {
		t.Errorf("child times = %v..%v", c.Start, c.End)
	}
}

func TestSpanInheritsTrackAndDoubleEnd(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	p := tr.StartTrack(SpanRef{}, "parent", "otn-ems")
	c := tr.Start(p, "child")
	c.End()
	c.EndErr(errors.New("late")) // must not overwrite
	if got := tr.Spans()[1]; got.Track != "otn-ems" || got.Outcome != "ok" {
		t.Errorf("child = %+v", got)
	}
}

func TestOpenSpanExport(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	tr.Start(SpanRef{}, "op:restore")
	k.After(time.Minute, func() {})
	k.Step()
	s := tr.Spans()[0]
	if s.Outcome != "open" || s.End != sim.Time(time.Minute) {
		t.Errorf("open span = %+v", s)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Len() != 0 {
		t.Fatal("nil tracer should be disabled")
	}
	s := tr.Start(SpanRef{}, "x")
	s.SetConn("a", "b", "c")
	s.SetWait(time.Second)
	s.EndErr(errors.New("e"))
	s.End()
	if tr.Spans() != nil || tr.SpansNamed("x") != nil || tr.Children(1) != nil {
		t.Error("nil tracer returned spans")
	}
	tr.Reset()
}

// TestDisabledObsZeroAllocs is the PR's zero-cost-when-disabled proof: every
// obs call a hot path makes — span start/annotate/end on a nil tracer,
// counter increments, gauge sets, histogram observes — performs zero
// allocations. CI runs this as the allocation-regression gate.
func TestDisabledObsZeroAllocs(t *testing.T) {
	var tr *Tracer
	reg := NewRegistry()
	c := reg.Counter("c_total", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h_seconds", "h", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(SpanRef{}, "op:setup")
		sp.SetConn("C0001", "acme", "dwdm")
		child := tr.StartTrack(sp, "ems-cmd", "roadm-ems")
		child.SetWait(time.Second)
		child.End()
		sp.EndErr(nil)
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Add(-1)
		h.Observe(62.5)
		h.ObserveDuration(10 * time.Second)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %v per op, want 0", allocs)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil instruments recorded values")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("griphon_setups_total", "setups", "layer", "dwdm")
	b := r.Counter("griphon_setups_total", "setups", "layer", "dwdm")
	if a != b {
		t.Error("same name+labels returned different counters")
	}
	other := r.Counter("griphon_setups_total", "setups", "layer", "otn")
	if a == other {
		t.Error("different labels returned the same counter")
	}
	a.Inc()
	if b.Value() != 1 || other.Value() != 0 {
		t.Errorf("values = %v, %v", b.Value(), other.Value())
	}
	if r.NumInstruments() != 1 {
		t.Errorf("instruments = %d", r.NumInstruments())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1, 10, 60})
	for _, v := range []float64{0.5, 5, 5, 62.5, 700} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 773 {
		t.Errorf("count=%d sum=%v", h.Count(), h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="1"} 1
lat_seconds_bucket{le="10"} 3
lat_seconds_bucket{le="60"} 3
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 773
lat_seconds_count 5
`
	if buf.String() != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestPrometheusOutputOrderAndLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "last", "layer", "otn").Inc()
	r.Counter("z_total", "last", "layer", "dwdm").Add(2)
	r.Gauge("a_gauge", "first").Set(7)
	r.GaugeFunc("m_fn", "middle", func() float64 { return 1.5 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge first
# TYPE a_gauge gauge
a_gauge 7
# HELP m_fn middle
# TYPE m_fn gauge
m_fn 1.5
# HELP z_total last
# TYPE z_total counter
z_total{layer="dwdm"} 2
z_total{layer="otn"} 1
`
	if buf.String() != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b").Add(3)
	r.Gauge("a", "a").Set(2)
	h := r.Histogram("c_seconds", "c", nil)
	h.Observe(1)
	h.Observe(2)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %d points", len(snap))
	}
	if snap[0].Name != "a" || snap[0].Value != 2 || snap[0].Kind != "gauge" {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "b_total" || snap[1].Value != 3 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
	if snap[2].Name != "c_seconds" || snap[2].Count != 2 || snap[2].Value != 3 {
		t.Errorf("snap[2] = %+v", snap[2])
	}
}

func TestWriteJSONL(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	sp := tr.Start(SpanRef{}, "op:setup")
	sp.SetConn("C0000", "acme", "dwdm")
	k.After(time.Second, func() {})
	k.Step()
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var rec jsonlSpan
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("bad jsonl: %v\n%s", err, buf.String())
	}
	if rec.Name != "op:setup" || rec.DurNS != int64(time.Second) || rec.Conn != "C0000" {
		t.Errorf("jsonl = %+v", rec)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k)
	root := tr.Start(SpanRef{}, "op:setup")
	child := tr.StartTrack(root, "laser-tune", "roadm-ems")
	k.After(13*time.Second, func() {})
	k.Step()
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	var slices, metas int
	tracks := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			tracks[ev.TID] = true
			if ev.Dur != 13e6 {
				t.Errorf("slice dur = %v µs", ev.Dur)
			}
		case "M":
			metas++
		}
	}
	if slices != 2 || metas < 3 {
		t.Errorf("slices=%d metas=%d", slices, metas)
	}
	if len(tracks) != 2 {
		t.Errorf("tracks = %v, want controller + roadm-ems", tracks)
	}
	if !strings.Contains(buf.String(), `"name":"roadm-ems"`) {
		t.Error("missing thread_name metadata for roadm-ems")
	}
}
