package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"griphon/internal/sim"
)

// Registry is a dependency-free catalog of counters, gauges and virtual-time
// histograms, exportable in Prometheus text format. Like the tracer it is
// single-threaded by design. Instruments are get-or-create: asking twice for
// the same name+labels returns the same instrument, which is how the
// experiments harness reads the controller's own tallies instead of keeping
// ad-hoc ones.
//
// Instrument updates never allocate: counters and gauges are field updates,
// histograms index a fixed bucket array. Only registration (done once, at
// construction) allocates.
type Registry struct {
	families map[string]*family
	names    []string
}

// family groups every child (label combination) of one metric name.
type family struct {
	name, help, kind string
	children         []child
	byLabels         map[string]int
}

type child struct {
	labels string // rendered {k="v",...} block, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelBlock renders k/v pairs as a deterministic Prometheus label block.
func labelBlock(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %v", labels))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) family(name, help, kind string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabels: map[string]int{}}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	return f
}

func (f *family) child(labels string) (int, bool) {
	i, ok := f.byLabels[labels]
	return i, ok
}

func (f *family) add(labels string, ch child) int {
	ch.labels = labels
	f.children = append(f.children, ch)
	f.byLabels[labels] = len(f.children) - 1
	return len(f.children) - 1
}

// Counter is a monotonically increasing count. A nil *Counter is valid and
// inert.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d (d must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(d float64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Counter returns (creating if needed) the counter with the given name and
// label pairs ("k1", "v1", "k2", "v2", ...).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, "counter")
	lb := labelBlock(labels)
	if i, ok := f.child(lb); ok {
		return f.children[i].c
	}
	c := &Counter{}
	f.add(lb, child{c: c})
	return c
}

// CounterFunc registers a counter whose value is computed at export time —
// for monotone values a component already tracks (EMS served commands, kernel
// events processed).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	f := r.family(name, help, "counter")
	lb := labelBlock(labels)
	if _, ok := f.child(lb); ok {
		return
	}
	f.add(lb, child{fn: fn})
}

// Gauge is a value that can go up and down. A nil *Gauge is valid and inert.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Gauge returns (creating if needed) the gauge with the given name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, "gauge")
	lb := labelBlock(labels)
	if i, ok := f.child(lb); ok {
		return f.children[i].g
	}
	g := &Gauge{}
	f.add(lb, child{g: g})
	return g
}

// GaugeFunc registers a gauge computed at export time — occupancy figures the
// controller can derive from live state (spectrum usage, pool occupancy,
// queue depth) without bookkeeping on the hot path.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.family(name, help, "gauge")
	lb := labelBlock(labels)
	if _, ok := f.child(lb); ok {
		return
	}
	f.add(lb, child{fn: fn})
}

// DefaultLatencyBuckets spans the latency regimes the paper measures: OTN
// shared-mesh restoration (sub-second), wavelength teardown (~10 s),
// wavelength setup (~60-70 s) and DWDM restoration (minutes).
func DefaultLatencyBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 20, 30, 45, 60, 75, 90, 120, 180, 300, 600}
}

// Histogram is a fixed-bucket histogram of virtual-time observations in
// seconds. A nil *Histogram is valid and inert; Observe never allocates.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last bucket is +Inf
	sum    float64
	n      uint64
}

// Observe records v (seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// ObserveDuration records a virtual duration.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean observation in seconds (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Histogram returns (creating if needed) a histogram with the given bucket
// upper bounds (nil ⇒ DefaultLatencyBuckets) and labels.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	f := r.family(name, help, "histogram")
	lb := labelBlock(labels)
	if i, ok := f.child(lb); ok {
		return f.children[i].h
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	f.add(lb, child{h: h})
	return h
}

// MetricPoint is one exported sample in a registry snapshot.
type MetricPoint struct {
	Name   string
	Labels string
	Kind   string // "counter" | "gauge" | "histogram"
	Value  float64
	Count  uint64 // histogram observations
}

// Snapshot returns every instrument's current value, sorted by name then
// labels — the programmatic view the experiments harness asserts on.
func (r *Registry) Snapshot() []MetricPoint {
	var out []MetricPoint
	for _, name := range r.names {
		f := r.families[name]
		idx := sortedChildren(f)
		for _, i := range idx {
			ch := f.children[i]
			p := MetricPoint{Name: name, Labels: ch.labels, Kind: f.kind}
			switch {
			case ch.c != nil:
				p.Value = ch.c.Value()
			case ch.g != nil:
				p.Value = ch.g.Value()
			case ch.h != nil:
				p.Value = ch.h.Sum()
				p.Count = ch.h.Count()
			case ch.fn != nil:
				p.Value = ch.fn()
			}
			out = append(out, p)
		}
	}
	return out
}

// NumInstruments returns the number of distinct metric names registered.
func (r *Registry) NumInstruments() int { return len(r.names) }

func sortedChildren(f *family) []int {
	idx := make([]int, len(f.children))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return f.children[idx[a]].labels < f.children[idx[b]].labels
	})
	return idx
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// mergeLE inserts an le label into an existing label block.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WritePrometheus exports the registry in Prometheus text format (0.0.4).
// Families appear in name order; children in label order — deterministic for
// golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, name := range r.names {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.kind); err != nil {
			return err
		}
		for _, i := range sortedChildren(f) {
			ch := f.children[i]
			switch {
			case ch.h != nil:
				h := ch.h
				cum := uint64(0)
				for bi, bound := range h.bounds {
					cum += h.counts[bi]
					le := fmtFloat(bound)
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(ch.labels, le), cum); err != nil {
						return err
					}
				}
				cum += h.counts[len(h.bounds)]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(ch.labels, "+Inf"), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
					name, ch.labels, fmtFloat(h.sum), name, ch.labels, h.n); err != nil {
					return err
				}
			case ch.fn != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", name, ch.labels, fmtFloat(ch.fn())); err != nil {
					return err
				}
			case ch.c != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", name, ch.labels, fmtFloat(ch.c.Value())); err != nil {
					return err
				}
			case ch.g != nil:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", name, ch.labels, fmtFloat(ch.g.Value())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
