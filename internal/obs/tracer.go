// Package obs is the observability plane: a virtual-clock-aware tracer and a
// dependency-free instrument registry threaded through the whole stack. Spans
// are stamped with sim.Time — not wall time — so a trace of a 62 s wavelength
// setup renders as the paper's per-step latency ladder regardless of how fast
// the simulator executed it. Every entry point is nil-safe: with a nil Tracer
// the span calls compile down to a comparison and return, so the PR 1 hot
// paths pay nothing (zero allocations) when tracing is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"griphon/internal/sim"
)

// Clock supplies the virtual time spans are stamped with. *sim.Kernel
// implements it.
type Clock interface {
	Now() sim.Time
}

// DefaultTrack is the track (Chrome trace "thread") op-level spans land on
// when no parent supplies one.
const DefaultTrack = "controller"

// span is the tracer's internal record. IDs are 1-based indices into the
// tracer's span slice; 0 means "no span".
type span struct {
	name     string
	track    string
	parent   int32
	start    sim.Time
	end      sim.Time
	done     bool
	wait     sim.Duration
	conn     string
	customer string
	layer    string
	outcome  string
}

// Span is the exported, read-only view of one recorded span.
type Span struct {
	ID       int
	Parent   int
	Name     string
	Track    string
	Start    sim.Time
	End      sim.Time
	Wait     sim.Duration
	Conn     string
	Customer string
	Layer    string
	Outcome  string
}

// Duration returns the span's virtual-time extent.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Tracer records spans against a virtual clock. It is not safe for concurrent
// use — like the kernel it observes, it lives on the single simulation thread.
// A nil *Tracer is a valid, disabled tracer: every method is a no-op and
// Start returns the zero SpanRef.
type Tracer struct {
	clock Clock
	spans []span
}

// NewTracer returns an enabled tracer over the given clock.
func NewTracer(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of spans recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// SpanRef is a lightweight handle to an open (or finished) span. The zero
// SpanRef is valid and inert, which is what a nil tracer hands out.
type SpanRef struct {
	t  *Tracer
	id int32
}

// Active reports whether the ref points at a recorded span.
func (s SpanRef) Active() bool { return s.t != nil && s.id != 0 }

// Start opens a span under parent (zero SpanRef for a root). The track is
// inherited from the parent, or DefaultTrack at the root.
func (t *Tracer) Start(parent SpanRef, name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	track := DefaultTrack
	if parent.t == t && parent.id != 0 {
		track = t.spans[parent.id-1].track
	}
	return t.StartTrack(parent, name, track)
}

// StartTrack opens a span on an explicit track (Chrome trace "thread") — the
// EMS managers use one track each so a setup renders as a step ladder across
// the controller and the vendor EMSes.
func (t *Tracer) StartTrack(parent SpanRef, name, track string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	var pid int32
	if parent.t == t {
		pid = parent.id
	}
	t.spans = append(t.spans, span{
		name:   name,
		track:  track,
		parent: pid,
		start:  t.clock.Now(),
	})
	return SpanRef{t: t, id: int32(len(t.spans))}
}

// End closes the span with outcome "ok". Ending twice or ending the zero ref
// is a no-op.
func (s SpanRef) End() { s.EndErr(nil) }

// EndErr closes the span, recording err (nil ⇒ "ok") as its outcome.
func (s SpanRef) EndErr(err error) {
	if !s.Active() {
		return
	}
	sp := &s.t.spans[s.id-1]
	if sp.done {
		return
	}
	sp.done = true
	sp.end = s.t.clock.Now()
	if err != nil {
		sp.outcome = err.Error()
	} else {
		sp.outcome = "ok"
	}
}

// EndOutcome closes the span with a free-form outcome ("blocked", "skipped").
func (s SpanRef) EndOutcome(outcome string) {
	if !s.Active() {
		return
	}
	sp := &s.t.spans[s.id-1]
	if sp.done {
		return
	}
	sp.done = true
	sp.end = s.t.clock.Now()
	sp.outcome = outcome
}

// SetConn attaches connection identity to the span.
func (s SpanRef) SetConn(conn, customer, layer string) {
	if !s.Active() {
		return
	}
	sp := &s.t.spans[s.id-1]
	sp.conn, sp.customer, sp.layer = conn, customer, layer
}

// SetWait records time the work spent queued before the span's execution
// started (EMS head-of-line blocking).
func (s SpanRef) SetWait(d sim.Duration) {
	if !s.Active() {
		return
	}
	s.t.spans[s.id-1].wait = d
}

// Spans returns a copy of every recorded span, in start order. Open spans are
// reported with End = the current clock reading and outcome "open".
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, len(t.spans))
	for i := range t.spans {
		out[i] = t.export(i)
	}
	return out
}

// SpansNamed returns the recorded spans with the given name.
func (t *Tracer) SpansNamed(name string) []Span {
	var out []Span
	if t == nil {
		return nil
	}
	for i := range t.spans {
		if t.spans[i].name == name {
			out = append(out, t.export(i))
		}
	}
	return out
}

// Children returns the direct children of the span with the given ID.
func (t *Tracer) Children(id int) []Span {
	var out []Span
	if t == nil {
		return nil
	}
	for i := range t.spans {
		if int(t.spans[i].parent) == id {
			out = append(out, t.export(i))
		}
	}
	return out
}

// Reset discards all recorded spans.
func (t *Tracer) Reset() {
	if t != nil {
		t.spans = t.spans[:0]
	}
}

func (t *Tracer) export(i int) Span {
	sp := t.spans[i]
	end, outcome := sp.end, sp.outcome
	if !sp.done {
		end, outcome = t.clock.Now(), "open"
	}
	return Span{
		ID:       i + 1,
		Parent:   int(sp.parent),
		Name:     sp.name,
		Track:    sp.track,
		Start:    sp.start,
		End:      end,
		Wait:     sp.wait,
		Conn:     sp.conn,
		Customer: sp.customer,
		Layer:    sp.layer,
		Outcome:  outcome,
	}
}

// jsonlSpan is the JSONL export schema: one object per line per span.
type jsonlSpan struct {
	ID       int    `json:"id"`
	Parent   int    `json:"parent,omitempty"`
	Name     string `json:"name"`
	Track    string `json:"track"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"dur_ns"`
	WaitNS   int64  `json:"wait_ns,omitempty"`
	Conn     string `json:"conn,omitempty"`
	Customer string `json:"customer,omitempty"`
	Layer    string `json:"layer,omitempty"`
	Outcome  string `json:"outcome"`
}

// WriteJSONL writes every span as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(jsonlSpan{
			ID:       s.ID,
			Parent:   s.Parent,
			Name:     s.Name,
			Track:    s.Track,
			StartNS:  int64(s.Start),
			DurNS:    int64(s.Duration()),
			WaitNS:   int64(s.Wait),
			Conn:     s.Conn,
			Customer: s.Customer,
			Layer:    s.Layer,
			Outcome:  s.Outcome,
		}); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event record (the chrome://tracing / Perfetto
// format): complete "X" slices plus "M" metadata naming the tracks.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the spans in Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. Timestamps are virtual
// microseconds since the simulation epoch.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()

	// Assign stable tids: controller first, then tracks by first use.
	tids := map[string]int{DefaultTrack: 0}
	order := []string{DefaultTrack}
	for _, s := range spans {
		if _, ok := tids[s.Track]; !ok {
			tids[s.Track] = len(order)
			order = append(order, s.Track)
		}
	}

	events := make([]chromeEvent, 0, len(spans)+len(order)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "griphon (virtual time)"},
	})
	for _, track := range order {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[track],
			Args: map[string]any{"name": track},
		})
		events = append(events, chromeEvent{
			Name: "thread_sort_index", Ph: "M", PID: 1, TID: tids[track],
			Args: map[string]any{"sort_index": tids[track]},
		})
	}
	for _, s := range spans {
		args := map[string]any{"outcome": s.Outcome}
		if s.Conn != "" {
			args["conn"] = s.Conn
		}
		if s.Customer != "" {
			args["customer"] = s.Customer
		}
		if s.Layer != "" {
			args["layer"] = s.Layer
		}
		if s.Wait > 0 {
			args["queue_wait"] = s.Wait.String()
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "griphon",
			Ph:   "X",
			TS:   float64(s.Start) / 1e3, // ns -> µs
			Dur:  float64(s.Duration()) / 1e3,
			PID:  1,
			TID:  tids[s.Track],
			Args: args,
		})
	}
	// Perfetto nests same-track slices by time containment; keep events in
	// (ts, -dur) order so parents precede children deterministically.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ph != events[j].Ph {
			return events[i].Ph == "M"
		}
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].Dur > events[j].Dur
	})

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		buf, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// String summarizes the tracer for diagnostics.
func (t *Tracer) String() string {
	if t == nil {
		return "obs.Tracer(disabled)"
	}
	return fmt.Sprintf("obs.Tracer(%d spans)", len(t.spans))
}
