package optics

import (
	"fmt"
	"sort"

	"griphon/internal/bw"
	"griphon/internal/topo"
)

// OT is a wavelength-tunable optical transponder installed at a ROADM
// add/drop port. Because the ROADM ports are colorless and non-directional
// (paper §2.1), any OT can be tuned to any channel and steered onto any of
// its node's fiber degrees — which is exactly what makes pooled, dynamically
// shared transponders viable.
type OT struct {
	ID   string
	Node topo.NodeID
	// MaxRate is the OT's line rate; it can carry any client at or below
	// this rate.
	MaxRate bw.Rate
}

// Regen is an optical regenerator (back-to-back OT pair) parked at an
// intermediate ROADM, used when a path exceeds optical reach. A regenerator
// terminates the light, so the wavelength may change across it.
type Regen struct {
	ID   string
	Node topo.NodeID
	// MaxRate bounds the client rate the regenerator can reproduce.
	MaxRate bw.Rate
}

// devicePool is a per-node pool of identical-role devices with best-fit
// allocation by rate.
type devicePool[T any] struct {
	free  []*T
	inUse map[string]*T
}

func newDevicePool[T any]() *devicePool[T] {
	return &devicePool[T]{inUse: make(map[string]*T)}
}

// OTBank pools the transponders at one node.
type OTBank struct {
	node topo.NodeID
	pool *devicePool[OT]
}

// NewOTBank creates a bank holding the given transponders.
func NewOTBank(node topo.NodeID, ots []*OT) *OTBank {
	b := &OTBank{node: node, pool: newDevicePool[OT]()}
	b.pool.free = append(b.pool.free, ots...)
	b.sortFree()
	return b
}

func (b *OTBank) sortFree() {
	sort.Slice(b.pool.free, func(i, j int) bool {
		if b.pool.free[i].MaxRate != b.pool.free[j].MaxRate {
			return b.pool.free[i].MaxRate < b.pool.free[j].MaxRate
		}
		return b.pool.free[i].ID < b.pool.free[j].ID
	})
}

// Free returns the number of available transponders.
func (b *OTBank) Free() int { return len(b.pool.free) }

// InUse returns the number of allocated transponders.
func (b *OTBank) InUse() int { return len(b.pool.inUse) }

// Total returns the bank size.
func (b *OTBank) Total() int { return b.Free() + b.InUse() }

// FreeAtRate returns how many free transponders can carry rate.
func (b *OTBank) FreeAtRate(rate bw.Rate) int {
	n := 0
	for _, ot := range b.pool.free {
		if ot.MaxRate >= rate {
			n++
		}
	}
	return n
}

// Alloc takes the smallest free transponder whose line rate can carry rate
// (best fit, so a 1G request does not burn a 40G OT while a 10G one idles).
func (b *OTBank) Alloc(rate bw.Rate) (*OT, error) {
	for i, ot := range b.pool.free {
		if ot.MaxRate >= rate {
			b.pool.free = append(b.pool.free[:i], b.pool.free[i+1:]...)
			b.pool.inUse[ot.ID] = ot
			return ot, nil
		}
	}
	return nil, fmt.Errorf("optics: no free OT at %s for rate %v", b.node, rate)
}

// Take allocates the free transponder with exactly the given ID. Recovery
// uses it to re-pin the same device a journaled connection held, so the
// rebuilt pool is indistinguishable from the one the crashed process lost.
func (b *OTBank) Take(id string) (*OT, error) {
	for i, ot := range b.pool.free {
		if ot.ID == id {
			b.pool.free = append(b.pool.free[:i], b.pool.free[i+1:]...)
			b.pool.inUse[ot.ID] = ot
			return ot, nil
		}
	}
	return nil, fmt.Errorf("optics: OT %s is not free at %s", id, b.node)
}

// Release returns a transponder to the pool. Releasing an unknown or already
// free OT is an error.
func (b *OTBank) Release(ot *OT) error {
	if ot == nil {
		return fmt.Errorf("optics: releasing nil OT")
	}
	if _, ok := b.pool.inUse[ot.ID]; !ok {
		return fmt.Errorf("optics: OT %s is not allocated at %s", ot.ID, b.node)
	}
	delete(b.pool.inUse, ot.ID)
	b.pool.free = append(b.pool.free, ot)
	b.sortFree()
	return nil
}

// RegenBank pools the regenerators at one node; its semantics mirror OTBank.
type RegenBank struct {
	node topo.NodeID
	pool *devicePool[Regen]
}

// NewRegenBank creates a bank holding the given regenerators.
func NewRegenBank(node topo.NodeID, regens []*Regen) *RegenBank {
	b := &RegenBank{node: node, pool: newDevicePool[Regen]()}
	b.pool.free = append(b.pool.free, regens...)
	b.sortFree()
	return b
}

func (b *RegenBank) sortFree() {
	sort.Slice(b.pool.free, func(i, j int) bool {
		if b.pool.free[i].MaxRate != b.pool.free[j].MaxRate {
			return b.pool.free[i].MaxRate < b.pool.free[j].MaxRate
		}
		return b.pool.free[i].ID < b.pool.free[j].ID
	})
}

// Free returns the number of available regenerators.
func (b *RegenBank) Free() int { return len(b.pool.free) }

// InUse returns the number of allocated regenerators.
func (b *RegenBank) InUse() int { return len(b.pool.inUse) }

// Total returns the bank size.
func (b *RegenBank) Total() int { return b.Free() + b.InUse() }

// Alloc takes the smallest free regenerator that can carry rate.
func (b *RegenBank) Alloc(rate bw.Rate) (*Regen, error) {
	for i, rg := range b.pool.free {
		if rg.MaxRate >= rate {
			b.pool.free = append(b.pool.free[:i], b.pool.free[i+1:]...)
			b.pool.inUse[rg.ID] = rg
			return rg, nil
		}
	}
	return nil, fmt.Errorf("optics: no free regen at %s for rate %v", b.node, rate)
}

// Take allocates the free regenerator with exactly the given ID; the
// recovery analogue of OTBank.Take.
func (b *RegenBank) Take(id string) (*Regen, error) {
	for i, rg := range b.pool.free {
		if rg.ID == id {
			b.pool.free = append(b.pool.free[:i], b.pool.free[i+1:]...)
			b.pool.inUse[rg.ID] = rg
			return rg, nil
		}
	}
	return nil, fmt.Errorf("optics: regen %s is not free at %s", id, b.node)
}

// Release returns a regenerator to the pool.
func (b *RegenBank) Release(rg *Regen) error {
	if rg == nil {
		return fmt.Errorf("optics: releasing nil regen")
	}
	if _, ok := b.pool.inUse[rg.ID]; !ok {
		return fmt.Errorf("optics: regen %s is not allocated at %s", rg.ID, b.node)
	}
	delete(b.pool.inUse, rg.ID)
	b.pool.free = append(b.pool.free, rg)
	b.sortFree()
	return nil
}
