package optics

import (
	"math/bits"
	"sync"
)

// FreeSet is a bitset of channels simultaneously free on every link of a
// transparent segment — the result of Plant.CommonFree. Bit ch-1 set means
// channel ch is free on the whole segment. The zero value is an empty set.
type FreeSet struct {
	words    []uint64
	channels int
}

// wordsPool recycles continuity buffers; a segment query on the warm path
// then allocates nothing beyond its result.
var wordsPool = sync.Pool{New: func() any { return new([]uint64) }}

func getFreeWords(n int) []uint64 {
	p := wordsPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	return (*p)[:n]
}

func putFreeWords(w []uint64) {
	wordsPool.Put(&w)
}

// Recycle returns the set's storage to the pool. The set must not be used
// afterwards. Calling it on the zero value is a no-op.
func (f FreeSet) Recycle() {
	if f.words != nil {
		putFreeWords(f.words)
	}
}

// Empty reports whether no channel is free across the segment.
func (f FreeSet) Empty() bool {
	for _, w := range f.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of free channels.
func (f FreeSet) Count() int {
	n := 0
	for _, w := range f.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// First returns the lowest free channel (first-fit), or false if none.
func (f FreeSet) First() (Channel, bool) {
	for i, w := range f.words {
		if w != 0 {
			return Channel(i*64 + bits.TrailingZeros64(w) + 1), true
		}
	}
	return 0, false
}

// Nth returns the i-th free channel in ascending order (0-based), or false
// if fewer than i+1 channels are free.
func (f FreeSet) Nth(i int) (Channel, bool) {
	for w, word := range f.words {
		c := bits.OnesCount64(word)
		if i >= c {
			i -= c
			continue
		}
		for ; i > 0; i-- {
			word &= word - 1
		}
		return Channel(w*64 + bits.TrailingZeros64(word) + 1), true
	}
	return 0, false
}

// ForEach visits the free channels in ascending order until fn returns false.
func (f FreeSet) ForEach(fn func(Channel) bool) {
	for w, word := range f.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !fn(Channel(w*64 + b + 1)) {
				return
			}
			word &= word - 1
		}
	}
}

// Slice materialises the free channels in ascending order.
func (f FreeSet) Slice() []Channel {
	var out []Channel
	f.ForEach(func(ch Channel) bool {
		out = append(out, ch)
		return true
	})
	return out
}
