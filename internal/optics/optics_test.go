package optics

import (
	"testing"
	"testing/quick"

	"griphon/internal/bw"
	"griphon/internal/topo"
)

func TestSpectrumReserveRelease(t *testing.T) {
	s := NewSpectrum(4)
	if s.Channels() != 4 || s.Used() != 0 {
		t.Fatalf("fresh spectrum: channels=%d used=%d", s.Channels(), s.Used())
	}
	if err := s.Reserve(2, "conn1"); err != nil {
		t.Fatal(err)
	}
	if s.IsFree(2) {
		t.Error("reserved channel reported free")
	}
	if s.Owner(2) != "conn1" {
		t.Errorf("owner = %q", s.Owner(2))
	}
	if err := s.Reserve(2, "conn2"); err == nil {
		t.Error("double reserve accepted")
	}
	if err := s.Reserve(0, "x"); err == nil {
		t.Error("channel 0 accepted")
	}
	if err := s.Reserve(5, "x"); err == nil {
		t.Error("out-of-range channel accepted")
	}
	if err := s.Reserve(3, ""); err == nil {
		t.Error("empty owner accepted")
	}
	if err := s.Release(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(2); err == nil {
		t.Error("double release accepted")
	}
	if !s.IsFree(2) {
		t.Error("released channel not free")
	}
}

func TestSpectrumFreeUsedLists(t *testing.T) {
	s := NewSpectrum(5)
	s.Reserve(1, "a")
	s.Reserve(4, "b")
	free := s.FreeChannels()
	if len(free) != 3 || free[0] != 2 || free[1] != 3 || free[2] != 5 {
		t.Errorf("free = %v", free)
	}
	used := s.UsedChannels()
	if len(used) != 2 || used[0] != 1 || used[1] != 4 {
		t.Errorf("used = %v", used)
	}
}

func TestIntersectFree(t *testing.T) {
	a, b := NewSpectrum(5), NewSpectrum(5)
	a.Reserve(1, "x")
	a.Reserve(3, "x")
	b.Reserve(3, "y")
	b.Reserve(5, "y")
	got := IntersectFree([]*Spectrum{a, b})
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("intersection = %v, want [2 4]", got)
	}
	if IntersectFree(nil) != nil {
		t.Error("empty intersection should be nil")
	}
}

// Property: reserve/release in any order never corrupts the free count.
func TestSpectrumAccountingProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		s := NewSpectrum(16)
		held := map[Channel]bool{}
		for _, op := range ops {
			ch := Channel(op%16 + 1)
			if op%2 == 0 {
				if err := s.Reserve(ch, "o"); (err == nil) != !held[ch] {
					return false
				}
				held[ch] = true
			} else {
				if err := s.Release(ch); (err == nil) != held[ch] {
					return false
				}
				delete(held, ch)
			}
		}
		return s.Used() == len(held) && len(s.FreeChannels()) == 16-len(held)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOTBankBestFit(t *testing.T) {
	ots := []*OT{
		{ID: "a", Node: "N", MaxRate: bw.Rate40G},
		{ID: "b", Node: "N", MaxRate: bw.Rate10G},
	}
	b := NewOTBank("N", ots)
	if b.Total() != 2 || b.Free() != 2 {
		t.Fatalf("total=%d free=%d", b.Total(), b.Free())
	}
	got, err := b.Alloc(bw.Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxRate != bw.Rate10G {
		t.Errorf("10G request got %v OT; best fit should pick the 10G one", got.MaxRate)
	}
	got40, err := b.Alloc(bw.Rate40G)
	if err != nil {
		t.Fatal(err)
	}
	if got40.MaxRate != bw.Rate40G {
		t.Errorf("40G request got %v OT", got40.MaxRate)
	}
	if _, err := b.Alloc(bw.Rate1G); err == nil {
		t.Error("alloc from empty bank succeeded")
	}
	if err := b.Release(got); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(got); err == nil {
		t.Error("double release accepted")
	}
	if err := b.Release(nil); err == nil {
		t.Error("nil release accepted")
	}
	if b.FreeAtRate(bw.Rate40G) != 0 || b.FreeAtRate(bw.Rate10G) != 1 {
		t.Errorf("FreeAtRate: 40G=%d 10G=%d", b.FreeAtRate(bw.Rate40G), b.FreeAtRate(bw.Rate10G))
	}
}

func TestOTBankRejectsTooFast(t *testing.T) {
	b := NewOTBank("N", []*OT{{ID: "a", Node: "N", MaxRate: bw.Rate10G}})
	if _, err := b.Alloc(bw.Rate40G); err == nil {
		t.Error("40G alloc from 10G-only bank succeeded")
	}
}

func TestRegenBank(t *testing.T) {
	b := NewRegenBank("N", []*Regen{
		{ID: "r1", Node: "N", MaxRate: bw.Rate40G},
		{ID: "r2", Node: "N", MaxRate: bw.Rate40G},
	})
	r1, err := b.Alloc(bw.Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	if b.Free() != 1 || b.InUse() != 1 {
		t.Errorf("free=%d inuse=%d", b.Free(), b.InUse())
	}
	if err := b.Release(r1); err != nil {
		t.Fatal(err)
	}
	if err := b.Release(&Regen{ID: "zz"}); err == nil {
		t.Error("unknown regen release accepted")
	}
	if err := b.Release(nil); err == nil {
		t.Error("nil regen release accepted")
	}
}

func TestNewPlantShape(t *testing.T) {
	g := topo.Testbed()
	p, err := NewPlant(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range g.Links() {
		s := p.Spectrum(l.ID)
		if s == nil || s.Channels() != 80 {
			t.Errorf("link %s spectrum wrong", l.ID)
		}
	}
	for _, n := range g.Nodes() {
		if p.OTs(n.ID).Total() != 8 {
			t.Errorf("node %s OTs = %d", n.ID, p.OTs(n.ID).Total())
		}
		if p.Regens(n.ID).Total() != 2 {
			t.Errorf("node %s regens = %d", n.ID, p.Regens(n.ID).Total())
		}
		// Mixed line rates: both 10G and 40G OTs present.
		if p.OTs(n.ID).FreeAtRate(bw.Rate40G) == 0 {
			t.Errorf("node %s has no 40G OTs", n.ID)
		}
		if p.OTs(n.ID).FreeAtRate(bw.Rate10G) != 8 {
			t.Errorf("node %s: all OTs should carry 10G", n.ID)
		}
	}
}

func TestNewPlantOverridesAndValidation(t *testing.T) {
	g := topo.Testbed()
	cfg := DefaultConfig()
	cfg.OTOverride = map[topo.NodeID]int{"I": 2}
	cfg.RegenOverride = map[topo.NodeID]int{"II": 5}
	p, err := NewPlant(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.OTs("I").Total() != 2 {
		t.Errorf("override OTs = %d", p.OTs("I").Total())
	}
	if p.Regens("II").Total() != 5 {
		t.Errorf("override regens = %d", p.Regens("II").Total())
	}
	if _, err := NewPlant(g, Config{Channels: 0, ReachKM: 1}); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewPlant(g, Config{Channels: 10, ReachKM: 0}); err == nil {
		t.Error("zero reach accepted")
	}
}

func TestPlantLinkState(t *testing.T) {
	g := topo.Testbed()
	p, _ := NewPlant(g, DefaultConfig())
	if !p.LinkUp("I-IV") {
		t.Fatal("fresh link down")
	}
	p.SetLinkUp("I-IV", false)
	if p.LinkUp("I-IV") {
		t.Fatal("failed link reported up")
	}
	path, _ := topo.PathVia(g, "I", "IV")
	if p.PathUp(path) {
		t.Error("path over failed link reported up")
	}
	down := p.DownLinks()
	if len(down) != 1 || down[0] != "I-IV" {
		t.Errorf("DownLinks = %v", down)
	}
	p.SetLinkUp("I-IV", true)
	if !p.LinkUp("I-IV") || len(p.DownLinks()) != 0 {
		t.Error("repair did not restore link")
	}
}

func TestContinuityChannels(t *testing.T) {
	g := topo.Testbed()
	p, _ := NewPlant(g, DefaultConfig())
	p.Spectrum("I-III").Reserve(1, "x")
	p.Spectrum("III-IV").Reserve(2, "y")
	chs := p.ContinuityChannels([]topo.LinkID{"I-III", "III-IV"})
	if len(chs) != 78 {
		t.Fatalf("continuity channels = %d, want 78", len(chs))
	}
	if chs[0] != 3 {
		t.Errorf("first common channel = %d, want 3", chs[0])
	}
	if p.ContinuityChannels([]topo.LinkID{"nope"}) != nil {
		t.Error("unknown link should yield nil")
	}
}

func TestPlanRegensTransparent(t *testing.T) {
	g := topo.Testbed()
	path, _ := topo.PathVia(g, "I", "II", "III", "IV")
	plan, err := PlanRegens(g, path, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NeedsRegen() {
		t.Errorf("short path should be transparent, got regens at %v", plan.RegenNodes)
	}
	if len(plan.Segments) != 1 || len(plan.Segments[0].Links) != 3 {
		t.Errorf("segments = %+v", plan.Segments)
	}
}

func TestPlanRegensSplits(t *testing.T) {
	g := topo.Backbone()
	// SEA -> CHI -> PIT: 2800 + 740 km exceeds a 3000 km reach; the regen
	// must land at CHI.
	path, err := topo.PathVia(g, "SEA", "CHI", "PIT")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanRegens(g, path, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.RegenNodes) != 1 || plan.RegenNodes[0] != "CHI" {
		t.Fatalf("regens = %v, want [CHI]", plan.RegenNodes)
	}
	if len(plan.Segments) != 2 {
		t.Fatalf("segments = %d", len(plan.Segments))
	}
	if plan.Segments[0].KM != 2800 || plan.Segments[1].KM != 740 {
		t.Errorf("segment lengths = %v/%v", plan.Segments[0].KM, plan.Segments[1].KM)
	}
}

func TestPlanRegensSpanTooLong(t *testing.T) {
	g := topo.Backbone()
	path, _ := topo.PathVia(g, "SEA", "CHI")
	if _, err := PlanRegens(g, path, 1000); err == nil {
		t.Error("2800 km span within 1000 km reach accepted")
	}
	if _, err := PlanRegens(g, path, 0); err == nil {
		t.Error("zero reach accepted")
	}
	if _, err := PlanRegens(g, topo.Path{}, 1000); err == nil {
		t.Error("empty path accepted")
	}
}

// Property: for random reaches, segments cover all links in order and each
// segment (except possibly single-span ones) respects reach.
func TestPlanRegensCoverageProperty(t *testing.T) {
	g := topo.Backbone()
	path, err := topo.PathVia(g, "SEA", "CHI", "PIT", "ATL", "HOU")
	if err != nil {
		t.Fatal(err)
	}
	maxSpan := 0.0
	for _, l := range path.Links {
		if g.Link(l).KM > maxSpan {
			maxSpan = g.Link(l).KM
		}
	}
	prop := func(extra uint16) bool {
		reach := maxSpan + float64(extra%4000)
		plan, err := PlanRegens(g, path, reach)
		if err != nil {
			return false
		}
		var all []topo.LinkID
		for _, seg := range plan.Segments {
			if seg.KM > reach {
				return false
			}
			all = append(all, seg.Links...)
		}
		if len(all) != len(path.Links) {
			return false
		}
		for i := range all {
			if all[i] != path.Links[i] {
				return false
			}
		}
		return len(plan.RegenNodes) == len(plan.Segments)-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReachForRateOverrides(t *testing.T) {
	g := topo.Testbed()
	cfg := DefaultConfig()
	cfg.ReachByRate = map[bw.Rate]float64{bw.Rate40G: 1200}
	p, err := NewPlant(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ReachFor(bw.Rate40G); got != 1200 {
		t.Errorf("ReachFor(40G) = %v, want 1200", got)
	}
	if got := p.ReachFor(bw.Rate10G); got != cfg.ReachKM {
		t.Errorf("ReachFor(10G) = %v, want default %v", got, cfg.ReachKM)
	}
	if got := p.ReachFor(0); got != cfg.ReachKM {
		t.Errorf("ReachFor(0) = %v, want default", got)
	}
	// A zero/negative override is ignored.
	cfg.ReachByRate[bw.Rate10G] = 0
	p2, _ := NewPlant(g, cfg)
	if got := p2.ReachFor(bw.Rate10G); got != cfg.ReachKM {
		t.Errorf("zero override honored: %v", got)
	}
}
