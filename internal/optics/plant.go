package optics

import (
	"fmt"
	"sort"

	"griphon/internal/bw"
	"griphon/internal/topo"
)

// Config sizes the photonic plant built over a topology.
type Config struct {
	// Channels is the DWDM grid size per fiber (40–100 in deployed
	// systems, paper §2.1).
	Channels int
	// ReachKM is the optical reach: the maximum transparent distance
	// before OEO regeneration is required.
	ReachKM float64
	// ReachByRate optionally overrides reach per line rate — higher rates
	// tolerate less dispersion/OSNR degradation, so a 40G signal needs
	// regeneration sooner than a 10G one. Rates not listed use ReachKM.
	ReachByRate map[bw.Rate]float64
	// OTsPerNode is the default transponder pool size at each node, split
	// between 10G and 40G line rates.
	OTsPerNode int
	// RegensPerNode is the default regenerator pool size at each node.
	RegensPerNode int
	// OTOverride sets a specific pool size for individual nodes.
	OTOverride map[topo.NodeID]int
	// RegenOverride sets a specific regen pool size for individual nodes.
	RegenOverride map[topo.NodeID]int
}

// DefaultConfig returns the plant sizing used by the experiments: an 80
// channel grid, 2500 km reach, 8 OTs and 2 REGENs per node.
func DefaultConfig() Config {
	return Config{
		Channels:      80,
		ReachKM:       2500,
		OTsPerNode:    8,
		RegensPerNode: 2,
	}
}

// Plant is the instantiated photonic layer: per-link spectra, per-node device
// banks, and fiber operational state.
type Plant struct {
	g       *topo.Graph
	cfg     Config
	spectra map[topo.LinkID]*Spectrum
	ots     map[topo.NodeID]*OTBank
	regens  map[topo.NodeID]*RegenBank
	down    map[topo.LinkID]bool
	// onLinkState, when non-nil, observes every SetLinkUp (see
	// SetOnLinkState).
	onLinkState func(id topo.LinkID, up bool)
	// usage[ch] counts the links currently carrying ch, maintained
	// incrementally on every Reserve/Release so most-used/least-used
	// wavelength assignment never rescans the network's spectra.
	usage []int32
	// broker, when non-nil, arbitrates channels shared with other plants
	// (see SetBroker).
	broker Broker
}

// Broker arbitrates spectrum that is shared beyond one plant — in the sharded
// controller every shard holds a replica of the photonic plant, and the
// cross-shard coordinator implements Broker to keep two shards from lighting
// the same wavelength on the same fiber. ClaimChannel may veto a Reserve (the
// hard guarantee); MaskForeign removes channels claimed elsewhere from a
// continuity bitset so searches rarely pick a channel the claim would veto.
type Broker interface {
	ClaimChannel(link topo.LinkID, ch Channel, owner string) error
	ReleaseChannel(link topo.LinkID, ch Channel)
	MaskForeign(link topo.LinkID, words []uint64)
}

// NewPlant builds the photonic plant for g. Each node gets a transponder bank
// (half 10G, half 40G line rate, rounded so at least one of each when the
// pool allows) and a regenerator bank.
func NewPlant(g *topo.Graph, cfg Config) (*Plant, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("optics: config needs a positive channel count")
	}
	if cfg.ReachKM <= 0 {
		return nil, fmt.Errorf("optics: config needs a positive reach")
	}
	p := &Plant{
		g:       g,
		cfg:     cfg,
		spectra: make(map[topo.LinkID]*Spectrum),
		ots:     make(map[topo.NodeID]*OTBank),
		regens:  make(map[topo.NodeID]*RegenBank),
		down:    make(map[topo.LinkID]bool),
	}
	p.usage = make([]int32, cfg.Channels+1)
	for _, l := range g.Links() {
		s := NewSpectrum(cfg.Channels)
		s.onChange = p.noteChannel
		p.spectra[l.ID] = s
	}
	for _, n := range g.Nodes() {
		nOTs := cfg.OTsPerNode
		if v, ok := cfg.OTOverride[n.ID]; ok {
			nOTs = v
		}
		var ots []*OT
		for i := 0; i < nOTs; i++ {
			rate := bw.Rate10G
			if i%2 == 1 {
				rate = bw.Rate40G
			}
			ots = append(ots, &OT{
				ID:      fmt.Sprintf("OT-%s-%02d", n.ID, i),
				Node:    n.ID,
				MaxRate: rate,
			})
		}
		p.ots[n.ID] = NewOTBank(n.ID, ots)

		nRg := cfg.RegensPerNode
		if v, ok := cfg.RegenOverride[n.ID]; ok {
			nRg = v
		}
		var rgs []*Regen
		for i := 0; i < nRg; i++ {
			rgs = append(rgs, &Regen{
				ID:      fmt.Sprintf("RG-%s-%02d", n.ID, i),
				Node:    n.ID,
				MaxRate: bw.Rate40G,
			})
		}
		p.regens[n.ID] = NewRegenBank(n.ID, rgs)
	}
	return p, nil
}

// Graph returns the underlying topology.
func (p *Plant) Graph() *topo.Graph { return p.g }

// Config returns the plant sizing.
func (p *Plant) Config() Config { return p.cfg }

// ReachFor returns the optical reach for a line rate: the per-rate override
// when configured, the default otherwise. A zero rate always gets the
// default.
func (p *Plant) ReachFor(rate bw.Rate) float64 {
	if rate > 0 {
		if km, ok := p.cfg.ReachByRate[rate]; ok && km > 0 {
			return km
		}
	}
	return p.cfg.ReachKM
}

// Spectrum returns the wavelength occupancy of a link, or nil if unknown.
func (p *Plant) Spectrum(id topo.LinkID) *Spectrum { return p.spectra[id] }

// SetBroker installs (or, with nil, detaches) a cross-plant spectrum broker.
// Every spectrum gains a gate that claims the channel with the broker before
// reserving and releases the claim on Release; CommonFree additionally masks
// out channels claimed by foreign plants.
func (p *Plant) SetBroker(b Broker) {
	p.broker = b
	for id, s := range p.spectra {
		if b == nil {
			s.gate, s.ungate = nil, nil
			continue
		}
		link := id
		s.gate = func(ch Channel, owner string) error {
			return b.ClaimChannel(link, ch, owner)
		}
		s.ungate = func(ch Channel) { b.ReleaseChannel(link, ch) }
	}
}

// OTs returns the transponder bank at a node, or nil if unknown.
func (p *Plant) OTs(id topo.NodeID) *OTBank { return p.ots[id] }

// Regens returns the regenerator bank at a node, or nil if unknown.
func (p *Plant) Regens(id topo.NodeID) *RegenBank { return p.regens[id] }

// LinkUp reports whether a fiber is operational.
func (p *Plant) LinkUp(id topo.LinkID) bool { return !p.down[id] }

// SetLinkUp marks a fiber up or down (a fiber cut takes every wavelength on
// it with it; alarm generation is the alarms package's job).
func (p *Plant) SetLinkUp(id topo.LinkID, up bool) {
	if up {
		delete(p.down, id)
	} else {
		p.down[id] = true
	}
	if p.onLinkState != nil {
		p.onLinkState(id, up)
	}
}

// SetOnLinkState installs an observer called after every link state change
// (both failures and restorations) — the controller's path cache hangs its
// invalidation off this. A nil fn detaches the observer.
func (p *Plant) SetOnLinkState(fn func(id topo.LinkID, up bool)) { p.onLinkState = fn }

// DownLinks returns the currently failed links in sorted order.
func (p *Plant) DownLinks() []topo.LinkID {
	if len(p.down) == 0 {
		return nil
	}
	out := make([]topo.LinkID, 0, len(p.down))
	for id := range p.down {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathUp reports whether every link of the path is operational.
func (p *Plant) PathUp(path topo.Path) bool {
	for _, l := range path.Links {
		if !p.LinkUp(l) {
			return false
		}
	}
	return true
}

// noteChannel is the spectra's change observer: it keeps the global
// per-channel usage counters in step with every Reserve/Release.
func (p *Plant) noteChannel(ch Channel, reserved bool) {
	if reserved {
		p.usage[ch]++
	} else {
		p.usage[ch]--
	}
}

// ChannelUsage returns how many links currently carry ch — an O(1) read of
// the incrementally maintained counter (what most-used/least-used assignment
// consults).
func (p *Plant) ChannelUsage(ch Channel) int {
	if ch < 1 || int(ch) >= len(p.usage) {
		return 0
	}
	return int(p.usage[ch])
}

// ContinuityChannels returns the channels simultaneously free on every link
// of the given transparent segment (ascending). An unknown link yields nil.
func (p *Plant) ContinuityChannels(links []topo.LinkID) []Channel {
	f, ok := p.CommonFree(links)
	if !ok {
		return nil
	}
	out := f.Slice()
	f.Recycle()
	return out
}

// CommonFree computes the wavelength-continuity constraint for a segment as
// a bitset: one word-wise AND per link instead of per-channel map probes. It
// reports false when the segment is empty or references an unknown link. The
// returned set borrows pooled storage — call Recycle when done (dropping it
// is safe, merely garbage).
func (p *Plant) CommonFree(links []topo.LinkID) (FreeSet, bool) {
	if len(links) == 0 {
		return FreeSet{}, false
	}
	nw := (p.cfg.Channels + 63) / 64
	buf := getFreeWords(nw)
	for i := range buf {
		buf[i] = ^uint64(0)
	}
	for _, id := range links {
		s := p.spectra[id]
		if s == nil {
			putFreeWords(buf)
			return FreeSet{}, false
		}
		for w := range buf {
			buf[w] &^= s.words[w]
		}
		if p.broker != nil {
			p.broker.MaskForeign(id, buf)
		}
	}
	if tail := p.cfg.Channels & 63; tail != 0 {
		buf[nw-1] &= (1 << uint(tail)) - 1
	}
	return FreeSet{words: buf, channels: p.cfg.Channels}, true
}
