package optics

import (
	"fmt"

	"griphon/internal/topo"
)

// Segment is a transparent stretch of a path: the light crosses its links on
// a single wavelength without OEO conversion. Consecutive segments meet at a
// regeneration node.
type Segment struct {
	Links []topo.LinkID
	KM    float64
}

// RegenPlan describes how a path is split to respect optical reach.
type RegenPlan struct {
	// Segments covers the path's links in order.
	Segments []Segment
	// RegenNodes are the intermediate nodes where regeneration happens,
	// one fewer than len(Segments); empty when the whole path is
	// transparent.
	RegenNodes []topo.NodeID
}

// NeedsRegen reports whether the plan uses any regenerators.
func (rp RegenPlan) NeedsRegen() bool { return len(rp.RegenNodes) > 0 }

// PlanRegens splits path into transparent segments no longer than reachKM,
// placing regenerators greedily at the latest node that keeps each segment
// within reach (the standard first-fit regenerator placement). It fails if a
// single span already exceeds reach — no regenerator placement can fix that.
func PlanRegens(g *topo.Graph, path topo.Path, reachKM float64) (RegenPlan, error) {
	if err := path.Validate(g); err != nil {
		return RegenPlan{}, err
	}
	if reachKM <= 0 {
		return RegenPlan{}, fmt.Errorf("optics: non-positive reach %.1f", reachKM)
	}
	var plan RegenPlan
	var cur Segment
	for i, lid := range path.Links {
		km := g.Link(lid).KM
		if km > reachKM {
			return RegenPlan{}, fmt.Errorf("optics: span %s (%.0f km) exceeds optical reach (%.0f km)", lid, km, reachKM)
		}
		if cur.KM+km > reachKM {
			// Terminate the current segment at the node before this
			// link and regenerate there.
			plan.Segments = append(plan.Segments, cur)
			plan.RegenNodes = append(plan.RegenNodes, path.Nodes[i])
			cur = Segment{}
		}
		cur.Links = append(cur.Links, lid)
		cur.KM += km
	}
	plan.Segments = append(plan.Segments, cur)
	return plan, nil
}
