// Package optics models the photonic plant of the DWDM layer: the wavelength
// grid on every fiber, tunable optical transponders (OTs) and regenerators
// (REGENs) pooled at each ROADM node, optical reach, and fiber operational
// state. It owns physical-resource accounting; path selection lives in
// internal/rwa and orchestration in internal/core.
package optics

import (
	"fmt"
	"math/bits"
)

// Channel is a DWDM grid channel number, 1-based. Channel 0 is invalid.
type Channel int

// Spectrum tracks wavelength occupancy on one fiber pair. A modern DWDM
// system carries 40–100 channels (paper §2.1); each channel is either free or
// owned by exactly one connection.
//
// Occupancy is a []uint64 bitset (bit ch-1 of word (ch-1)/64 set = occupied)
// so continuity intersections reduce to word-wise ANDs; the owner map is kept
// only for diagnostics (Owner) and double-reserve error messages.
type Spectrum struct {
	channels int
	words    []uint64
	used     int
	owner    map[Channel]string
	// onChange, when set, observes every successful Reserve/Release — the
	// Plant uses it to maintain global per-channel usage counters.
	onChange func(ch Channel, reserved bool)
	// gate, when set, can veto a Reserve after local validation but before
	// any mutation — the hook a cross-shard coordinator uses to arbitrate
	// spectrum shared between control-plane shards. A gate error leaves the
	// spectrum untouched.
	gate func(ch Channel, owner string) error
	// ungate, when set, observes every successful Release so the gate's
	// bookkeeping can retire its claim.
	ungate func(ch Channel)
}

// NewSpectrum returns a spectrum with the given channel count.
func NewSpectrum(channels int) *Spectrum {
	if channels <= 0 {
		panic(fmt.Sprintf("optics: non-positive channel count %d", channels))
	}
	return &Spectrum{
		channels: channels,
		words:    make([]uint64, (channels+63)/64),
		owner:    make(map[Channel]string),
	}
}

// Channels returns the grid size.
func (s *Spectrum) Channels() int { return s.channels }

// Used returns the number of occupied channels.
func (s *Spectrum) Used() int { return s.used }

// IsFree reports whether ch is within the grid and unoccupied.
func (s *Spectrum) IsFree(ch Channel) bool {
	if ch < 1 || int(ch) > s.channels {
		return false
	}
	return s.words[(ch-1)>>6]&(1<<uint((ch-1)&63)) == 0
}

// Owner returns the owner of ch, or "" if free or out of range.
func (s *Spectrum) Owner(ch Channel) string { return s.owner[ch] }

// Reserve marks ch as owned by owner. It fails on out-of-range or occupied
// channels and on an empty owner.
func (s *Spectrum) Reserve(ch Channel, owner string) error {
	if owner == "" {
		return fmt.Errorf("optics: empty owner")
	}
	if ch < 1 || int(ch) > s.channels {
		return fmt.Errorf("optics: channel %d outside 1..%d", ch, s.channels)
	}
	w, bit := (ch-1)>>6, uint64(1)<<uint((ch-1)&63)
	if s.words[w]&bit != 0 {
		return fmt.Errorf("optics: channel %d already owned by %s", ch, s.owner[ch])
	}
	if s.gate != nil {
		if err := s.gate(ch, owner); err != nil {
			return err
		}
	}
	s.words[w] |= bit
	s.used++
	s.owner[ch] = owner
	if s.onChange != nil {
		s.onChange(ch, true)
	}
	return nil
}

// Release frees ch. Releasing a free channel is an error: it indicates a
// double-release bug.
func (s *Spectrum) Release(ch Channel) error {
	if ch < 1 || int(ch) > s.channels {
		return fmt.Errorf("optics: releasing free channel %d", ch)
	}
	w, bit := (ch-1)>>6, uint64(1)<<uint((ch-1)&63)
	if s.words[w]&bit == 0 {
		return fmt.Errorf("optics: releasing free channel %d", ch)
	}
	s.words[w] &^= bit
	s.used--
	delete(s.owner, ch)
	if s.ungate != nil {
		s.ungate(ch)
	}
	if s.onChange != nil {
		s.onChange(ch, false)
	}
	return nil
}

// FreeChannels returns all free channels in ascending order.
func (s *Spectrum) FreeChannels() []Channel {
	out := make([]Channel, 0, s.channels-s.used)
	for w, word := range s.words {
		free := ^word
		if tail := s.channels - w*64; tail < 64 {
			free &= (1 << uint(tail)) - 1
		}
		for free != 0 {
			b := bits.TrailingZeros64(free)
			out = append(out, Channel(w*64+b+1))
			free &= free - 1
		}
	}
	return out
}

// UsedChannels returns all occupied channels in ascending order.
func (s *Spectrum) UsedChannels() []Channel {
	out := make([]Channel, 0, s.used)
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, Channel(w*64+b+1))
			word &= word - 1
		}
	}
	return out
}

// IntersectFree returns the channels free on every spectrum in the slice, in
// ascending order — the wavelength-continuity constraint for a transparent
// segment. With no spectra it returns nil. Spectra may differ in grid size;
// channels beyond a spectrum's grid count as not free, matching IsFree.
func IntersectFree(spectra []*Spectrum) []Channel {
	if len(spectra) == 0 {
		return nil
	}
	minCh := spectra[0].channels
	for _, s := range spectra[1:] {
		if s.channels < minCh {
			minCh = s.channels
		}
	}
	var out []Channel
	for w := 0; w*64 < minCh; w++ {
		free := ^uint64(0)
		for _, s := range spectra {
			free &^= s.words[w]
		}
		if tail := minCh - w*64; tail < 64 {
			free &= (1 << uint(tail)) - 1
		}
		for free != 0 {
			b := bits.TrailingZeros64(free)
			out = append(out, Channel(w*64+b+1))
			free &= free - 1
		}
	}
	return out
}
