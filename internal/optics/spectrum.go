// Package optics models the photonic plant of the DWDM layer: the wavelength
// grid on every fiber, tunable optical transponders (OTs) and regenerators
// (REGENs) pooled at each ROADM node, optical reach, and fiber operational
// state. It owns physical-resource accounting; path selection lives in
// internal/rwa and orchestration in internal/core.
package optics

import (
	"fmt"
	"sort"
)

// Channel is a DWDM grid channel number, 1-based. Channel 0 is invalid.
type Channel int

// Spectrum tracks wavelength occupancy on one fiber pair. A modern DWDM
// system carries 40–100 channels (paper §2.1); each channel is either free or
// owned by exactly one connection.
type Spectrum struct {
	channels int
	owner    map[Channel]string
}

// NewSpectrum returns a spectrum with the given channel count.
func NewSpectrum(channels int) *Spectrum {
	if channels <= 0 {
		panic(fmt.Sprintf("optics: non-positive channel count %d", channels))
	}
	return &Spectrum{channels: channels, owner: make(map[Channel]string)}
}

// Channels returns the grid size.
func (s *Spectrum) Channels() int { return s.channels }

// Used returns the number of occupied channels.
func (s *Spectrum) Used() int { return len(s.owner) }

// IsFree reports whether ch is within the grid and unoccupied.
func (s *Spectrum) IsFree(ch Channel) bool {
	if ch < 1 || int(ch) > s.channels {
		return false
	}
	_, used := s.owner[ch]
	return !used
}

// Owner returns the owner of ch, or "" if free or out of range.
func (s *Spectrum) Owner(ch Channel) string { return s.owner[ch] }

// Reserve marks ch as owned by owner. It fails on out-of-range or occupied
// channels and on an empty owner.
func (s *Spectrum) Reserve(ch Channel, owner string) error {
	if owner == "" {
		return fmt.Errorf("optics: empty owner")
	}
	if ch < 1 || int(ch) > s.channels {
		return fmt.Errorf("optics: channel %d outside 1..%d", ch, s.channels)
	}
	if cur, used := s.owner[ch]; used {
		return fmt.Errorf("optics: channel %d already owned by %s", ch, cur)
	}
	s.owner[ch] = owner
	return nil
}

// Release frees ch. Releasing a free channel is an error: it indicates a
// double-release bug.
func (s *Spectrum) Release(ch Channel) error {
	if _, used := s.owner[ch]; !used {
		return fmt.Errorf("optics: releasing free channel %d", ch)
	}
	delete(s.owner, ch)
	return nil
}

// FreeChannels returns all free channels in ascending order.
func (s *Spectrum) FreeChannels() []Channel {
	out := make([]Channel, 0, s.channels-len(s.owner))
	for ch := Channel(1); int(ch) <= s.channels; ch++ {
		if _, used := s.owner[ch]; !used {
			out = append(out, ch)
		}
	}
	return out
}

// UsedChannels returns all occupied channels in ascending order.
func (s *Spectrum) UsedChannels() []Channel {
	out := make([]Channel, 0, len(s.owner))
	for ch := range s.owner {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntersectFree returns the channels free on every spectrum in the slice, in
// ascending order — the wavelength-continuity constraint for a transparent
// segment. With no spectra it returns nil.
func IntersectFree(spectra []*Spectrum) []Channel {
	if len(spectra) == 0 {
		return nil
	}
	var out []Channel
	for _, ch := range spectra[0].FreeChannels() {
		ok := true
		for _, s := range spectra[1:] {
			if !s.IsFree(ch) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, ch)
		}
	}
	return out
}
