package otn

import (
	"fmt"
	"sort"

	"griphon/internal/topo"
)

// Fabric is the OTN overlay: the set of OTN switches and the line pipes
// joining them. It is a multigraph — several pipes (wavelengths) may run
// between the same switch pair — that grows and shrinks as the controller
// lights and retires wavelengths.
type Fabric struct {
	switches map[topo.NodeID]bool
	pipes    map[PipeID]*Pipe
	adj      map[topo.NodeID][]*Pipe
	nextID   int
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		switches: make(map[topo.NodeID]bool),
		pipes:    make(map[PipeID]*Pipe),
		adj:      make(map[topo.NodeID][]*Pipe),
	}
}

// FabricFrom builds a fabric with a switch at every node of g that has one
// (Node.HasOTN), and no pipes.
func FabricFrom(g *topo.Graph) *Fabric {
	f := NewFabric()
	for _, n := range g.Nodes() {
		if n.HasOTN {
			f.AddSwitch(n.ID)
		}
	}
	return f
}

// AddSwitch registers an OTN switch at node. Adding one twice is harmless.
func (f *Fabric) AddSwitch(node topo.NodeID) { f.switches[node] = true }

// HasSwitch reports whether node hosts an OTN switch.
func (f *Fabric) HasSwitch(node topo.NodeID) bool { return f.switches[node] }

// Switches returns all switch locations, sorted.
func (f *Fabric) Switches() []topo.NodeID {
	out := make([]topo.NodeID, 0, len(f.switches))
	for n := range f.switches {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddPipe creates a new pipe between two switches and returns it. The ID is
// generated; both endpoints must host switches.
func (f *Fabric) AddPipe(a, b topo.NodeID, level Level) (*Pipe, error) {
	if !f.switches[a] {
		return nil, fmt.Errorf("otn: no OTN switch at %s", a)
	}
	if !f.switches[b] {
		return nil, fmt.Errorf("otn: no OTN switch at %s", b)
	}
	id := PipeID(fmt.Sprintf("P%03d:%s-%s", f.nextID, a, b))
	f.nextID++
	p, err := NewPipe(id, a, b, level)
	if err != nil {
		return nil, err
	}
	f.pipes[id] = p
	f.adj[a] = append(f.adj[a], p)
	f.adj[b] = append(f.adj[b], p)
	return p, nil
}

// RestorePipe registers a pipe rebuilt from the journal under its original
// ID, bypassing ID generation. Both endpoints must host switches and the ID
// must be unused.
func (f *Fabric) RestorePipe(p *Pipe) error {
	if p == nil {
		return fmt.Errorf("otn: restoring nil pipe")
	}
	if !f.switches[p.a] {
		return fmt.Errorf("otn: no OTN switch at %s", p.a)
	}
	if !f.switches[p.b] {
		return fmt.Errorf("otn: no OTN switch at %s", p.b)
	}
	if _, dup := f.pipes[p.id]; dup {
		return fmt.Errorf("otn: pipe %s already exists", p.id)
	}
	f.pipes[p.id] = p
	f.adj[p.a] = append(f.adj[p.a], p)
	f.adj[p.b] = append(f.adj[p.b], p)
	return nil
}

// NextID returns the pipe ID generation counter.
func (f *Fabric) NextID() int { return f.nextID }

// SetNextID fast-forwards the ID generation counter during recovery so new
// pipes never collide with journaled ones.
func (f *Fabric) SetNextID(n int) {
	if n > f.nextID {
		f.nextID = n
	}
}

// RemovePipe retires a pipe. It fails if the pipe still carries circuits or
// shared reservations — retiring live capacity would silently drop traffic.
func (f *Fabric) RemovePipe(id PipeID) error {
	p, ok := f.pipes[id]
	if !ok {
		return fmt.Errorf("otn: unknown pipe %s", id)
	}
	if p.UsedSlots() > 0 {
		return fmt.Errorf("otn: pipe %s still carries %d slots", id, p.UsedSlots())
	}
	if len(p.shared) > 0 {
		return fmt.Errorf("otn: pipe %s still holds shared reservations", id)
	}
	delete(f.pipes, id)
	f.adj[p.a] = removePipe(f.adj[p.a], p)
	f.adj[p.b] = removePipe(f.adj[p.b], p)
	return nil
}

func removePipe(ps []*Pipe, p *Pipe) []*Pipe {
	for i, q := range ps {
		if q == p {
			return append(ps[:i], ps[i+1:]...)
		}
	}
	return ps
}

// Pipe returns the pipe with the given ID, or nil.
func (f *Fabric) Pipe(id PipeID) *Pipe { return f.pipes[id] }

// Pipes returns all pipes sorted by ID.
func (f *Fabric) Pipes() []*Pipe {
	out := make([]*Pipe, 0, len(f.pipes))
	for _, p := range f.pipes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// PipesAt returns the pipes at node, sorted by ID.
func (f *Fabric) PipesAt(node topo.NodeID) []*Pipe {
	out := append([]*Pipe(nil), f.adj[node]...)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// PipesBetween returns pipes directly joining a and b, sorted by ID.
func (f *Fabric) PipesBetween(a, b topo.NodeID) []*Pipe {
	var out []*Pipe
	for _, p := range f.adj[a] {
		if p.Has(b) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// FindPath returns the pipe sequence of a shortest (fewest pipes) usable path
// from src to dst: every pipe up, not in avoid, and with at least slots free
// slots. BFS with sorted adjacency keeps results deterministic.
func (f *Fabric) FindPath(src, dst topo.NodeID, slots int, avoid map[PipeID]bool) ([]*Pipe, error) {
	if !f.switches[src] {
		return nil, fmt.Errorf("otn: no OTN switch at %s", src)
	}
	if !f.switches[dst] {
		return nil, fmt.Errorf("otn: no OTN switch at %s", dst)
	}
	if src == dst {
		return nil, fmt.Errorf("otn: source equals destination %s", src)
	}
	type hop struct {
		node topo.NodeID
		via  *Pipe
		prev *hop
	}
	seen := map[topo.NodeID]bool{src: true}
	queue := []*hop{{node: src}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.node == dst {
			var pipes []*Pipe
			for x := h; x.via != nil; x = x.prev {
				pipes = append(pipes, x.via)
			}
			// Reverse into src->dst order.
			for i, j := 0, len(pipes)-1; i < j; i, j = i+1, j-1 {
				pipes[i], pipes[j] = pipes[j], pipes[i]
			}
			return pipes, nil
		}
		for _, p := range f.PipesAt(h.node) {
			if avoid[p.id] || !p.up || p.FreeSlots() < slots {
				continue
			}
			o := p.Other(h.node)
			if seen[o] {
				continue
			}
			seen[o] = true
			queue = append(queue, &hop{node: o, via: p, prev: h})
		}
	}
	return nil, fmt.Errorf("otn: no OTN path %s->%s with %d free slots", src, dst, slots)
}

// ReservePath reserves n slots for owner on every pipe in the path,
// atomically: on any failure it rolls back the slots already taken.
func ReservePath(pipes []*Pipe, owner string, n int) error {
	for i, p := range pipes {
		if _, err := p.Reserve(owner, n); err != nil {
			for _, q := range pipes[:i] {
				q.ReleaseOwner(owner) //lint:allow errcheck rollback of our own reservation
			}
			return err
		}
	}
	return nil
}

// ReleasePath frees owner's slots on every pipe in the path. It returns the
// first error but keeps releasing (a half-released circuit must not leak the
// rest).
func ReleasePath(pipes []*Pipe, owner string) error {
	var first error
	for _, p := range pipes {
		if _, err := p.ReleaseOwner(owner); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReserveSharedPath books shared-mesh reservations for owner on every pipe,
// rolling back on failure.
func ReserveSharedPath(pipes []*Pipe, owner string, n int) error {
	for i, p := range pipes {
		if err := p.ReserveShared(owner, n); err != nil {
			for _, q := range pipes[:i] {
				q.ReleaseShared(owner) //lint:allow errcheck rollback
			}
			return err
		}
	}
	return nil
}

// ActivatePath converts owner's shared reservations into real slots on every
// pipe, rolling back fully on failure so a blocked restoration leaves the
// shared pool untouched.
func ActivatePath(pipes []*Pipe, owner string) error {
	need := make([]int, len(pipes))
	for i, p := range pipes {
		n, ok := p.shared[owner]
		if !ok {
			// Roll back activations done so far, restoring reservations.
			for j := 0; j < i; j++ {
				pipes[j].ReleaseOwner(owner) //lint:allow errcheck rollback
				pipes[j].ReserveShared(owner, need[j])
			}
			return fmt.Errorf("otn: owner %s has no shared reservation on %s", owner, p.id)
		}
		need[i] = n
		if _, err := p.Activate(owner); err != nil {
			for j := 0; j < i; j++ {
				pipes[j].ReleaseOwner(owner) //lint:allow errcheck rollback
				pipes[j].ReserveShared(owner, need[j])
			}
			return err
		}
	}
	return nil
}
