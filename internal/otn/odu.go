// Package otn models the Optical Transport Network layer of paper §2.1/§2.2:
// ITU G.709 digital containers (ODU0..ODU3), OTN switches that cross-connect
// at ODU0 (1.25 Gb/s) granularity, line pipes carried over DWDM wavelengths,
// tributary-slot grooming, and sub-second shared-mesh restoration. The OTN
// layer is what lets GRIPhoN sell 1 Gb/s BoD circuits without burning a whole
// wavelength per customer.
package otn

import (
	"fmt"

	"griphon/internal/bw"
)

// Level is an ODU container level.
type Level int

const (
	// ODU0 carries a 1GbE client in one 1.25G tributary slot.
	ODU0 Level = iota
	// ODU1 carries a 2.5G client in two slots.
	ODU1
	// ODU2 carries a 10G client in eight slots.
	ODU2
	// ODU3 carries a 40G client in thirty-two slots.
	ODU3
)

// SlotRate is the bandwidth of one tributary slot.
const SlotRate = bw.Rate(1.25e9)

// Slots returns the number of 1.25G tributary slots the level occupies.
func (l Level) Slots() int {
	switch l {
	case ODU0:
		return 1
	case ODU1:
		return 2
	case ODU2:
		return 8
	case ODU3:
		return 32
	}
	return 0
}

// ClientRate returns the nominal client rate the level carries.
func (l Level) ClientRate() bw.Rate {
	switch l {
	case ODU0:
		return bw.Rate1G
	case ODU1:
		return bw.Rate2G5
	case ODU2:
		return bw.Rate10G
	case ODU3:
		return bw.Rate40G
	}
	return 0
}

func (l Level) String() string {
	if l >= ODU0 && l <= ODU3 {
		return fmt.Sprintf("ODU%d", int(l))
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// LevelFor returns the smallest ODU level whose client rate carries r.
func LevelFor(r bw.Rate) (Level, error) {
	switch {
	case r <= 0:
		return 0, fmt.Errorf("otn: non-positive rate %v", r)
	case r <= bw.Rate1G:
		return ODU0, nil
	case r <= bw.Rate2G5:
		return ODU1, nil
	case r <= bw.Rate10G:
		return ODU2, nil
	case r <= bw.Rate40G:
		return ODU3, nil
	default:
		return 0, fmt.Errorf("otn: rate %v exceeds ODU3", r)
	}
}

// SlotsFor returns the number of tributary slots needed to carry r
// (the slot count of its ODU level).
func SlotsFor(r bw.Rate) (int, error) {
	l, err := LevelFor(r)
	if err != nil {
		return 0, err
	}
	return l.Slots(), nil
}
