package otn

import (
	"testing"
	"testing/quick"

	"griphon/internal/bw"
	"griphon/internal/topo"
)

func TestLevelSlotsAndRates(t *testing.T) {
	cases := []struct {
		l     Level
		slots int
		rate  bw.Rate
		str   string
	}{
		{ODU0, 1, bw.Rate1G, "ODU0"},
		{ODU1, 2, bw.Rate2G5, "ODU1"},
		{ODU2, 8, bw.Rate10G, "ODU2"},
		{ODU3, 32, bw.Rate40G, "ODU3"},
	}
	for _, c := range cases {
		if c.l.Slots() != c.slots {
			t.Errorf("%v.Slots() = %d, want %d", c.l, c.l.Slots(), c.slots)
		}
		if c.l.ClientRate() != c.rate {
			t.Errorf("%v.ClientRate() = %v, want %v", c.l, c.l.ClientRate(), c.rate)
		}
		if c.l.String() != c.str {
			t.Errorf("String = %q", c.l.String())
		}
	}
	if Level(9).Slots() != 0 || Level(9).ClientRate() != 0 {
		t.Error("invalid level should have zero slots/rate")
	}
}

func TestLevelFor(t *testing.T) {
	cases := []struct {
		r    bw.Rate
		want Level
	}{
		{bw.Rate1G, ODU0},
		{500 * bw.Mbps, ODU0},
		{bw.Rate2G5, ODU1},
		{2 * bw.Gbps, ODU1},
		{bw.Rate10G, ODU2},
		{bw.Rate40G, ODU3},
		{11 * bw.Gbps, ODU3},
	}
	for _, c := range cases {
		got, err := LevelFor(c.r)
		if err != nil {
			t.Errorf("LevelFor(%v): %v", c.r, err)
			continue
		}
		if got != c.want {
			t.Errorf("LevelFor(%v) = %v, want %v", c.r, got, c.want)
		}
	}
	if _, err := LevelFor(0); err == nil {
		t.Error("LevelFor(0) accepted")
	}
	if _, err := LevelFor(bw.Rate100G); err == nil {
		t.Error("LevelFor(100G) accepted")
	}
	if n, _ := SlotsFor(bw.Rate2G5); n != 2 {
		t.Errorf("SlotsFor(2.5G) = %d", n)
	}
	if _, err := SlotsFor(-1); err == nil {
		t.Error("SlotsFor(-1) accepted")
	}
}

func TestNewPipeValidation(t *testing.T) {
	if _, err := NewPipe("", "A", "B", ODU2); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := NewPipe("p", "A", "A", ODU2); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewPipe("p", "A", "B", ODU0); err == nil {
		t.Error("ODU0 line pipe accepted")
	}
}

func TestPipeReserveRelease(t *testing.T) {
	p, err := NewPipe("p1", "A", "B", ODU2)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalSlots() != 8 || p.FreeSlots() != 8 {
		t.Fatalf("slots: total=%d free=%d", p.TotalSlots(), p.FreeSlots())
	}
	idx, err := p.Reserve("c1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("indices = %v", idx)
	}
	if p.FreeSlots() != 6 || p.UsedSlots() != 2 {
		t.Errorf("free=%d used=%d", p.FreeSlots(), p.UsedSlots())
	}
	if got := p.SlotsOf("c1"); len(got) != 2 {
		t.Errorf("SlotsOf = %v", got)
	}
	if _, err := p.Reserve("c2", 7); err == nil {
		t.Error("over-reservation accepted")
	}
	if p.FreeSlots() != 6 {
		t.Error("failed reserve leaked slots")
	}
	n, err := p.ReleaseOwner("c1")
	if err != nil || n != 2 {
		t.Errorf("release = %d,%v", n, err)
	}
	if _, err := p.ReleaseOwner("c1"); err == nil {
		t.Error("double release accepted")
	}
	if _, err := p.Reserve("", 1); err == nil {
		t.Error("empty owner accepted")
	}
	if _, err := p.Reserve("x", 0); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestPipeDownBlocksReserve(t *testing.T) {
	p, _ := NewPipe("p1", "A", "B", ODU2)
	p.SetUp(false)
	if p.Up() {
		t.Fatal("SetUp(false) ignored")
	}
	if _, err := p.Reserve("c", 1); err == nil {
		t.Error("reserve on down pipe accepted")
	}
}

func TestPipeSharedReservations(t *testing.T) {
	p, _ := NewPipe("p1", "A", "B", ODU2)
	if err := p.ReserveShared("b1", 8); err != nil {
		t.Fatal(err)
	}
	if err := p.ReserveShared("b2", 8); err != nil {
		t.Fatalf("oversubscription must be allowed: %v", err)
	}
	if err := p.ReserveShared("b1", 1); err == nil {
		t.Error("duplicate shared reservation accepted")
	}
	if p.SharedDemand() != 16 {
		t.Errorf("SharedDemand = %d", p.SharedDemand())
	}
	owners := p.SharedOwners()
	if len(owners) != 2 || owners[0] != "b1" || owners[1] != "b2" {
		t.Errorf("SharedOwners = %v", owners)
	}

	idx, err := p.Activate("b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 8 || p.FreeSlots() != 0 {
		t.Errorf("activation took %d slots, free=%d", len(idx), p.FreeSlots())
	}
	// b2's activation must now block: the shared pool is spent.
	if _, err := p.Activate("b2"); err == nil {
		t.Error("second activation succeeded on a full pipe")
	}
	if err := p.ReleaseShared("b2"); err != nil {
		t.Fatal(err)
	}
	if err := p.ReleaseShared("b2"); err == nil {
		t.Error("double shared release accepted")
	}
	if _, err := p.Activate("zz"); err == nil {
		t.Error("activation without reservation accepted")
	}
}

func fabricABC(t *testing.T) (*Fabric, *Pipe, *Pipe, *Pipe) {
	t.Helper()
	f := NewFabric()
	for _, n := range []topo.NodeID{"A", "B", "C"} {
		f.AddSwitch(n)
	}
	ab, err := f.AddPipe("A", "B", ODU2)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := f.AddPipe("B", "C", ODU2)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := f.AddPipe("A", "C", ODU2)
	if err != nil {
		t.Fatal(err)
	}
	return f, ab, bc, ac
}

func TestFabricBasics(t *testing.T) {
	f, ab, _, _ := fabricABC(t)
	if !f.HasSwitch("A") || f.HasSwitch("Z") {
		t.Error("HasSwitch wrong")
	}
	if got := f.Switches(); len(got) != 3 || got[0] != "A" {
		t.Errorf("Switches = %v", got)
	}
	if len(f.Pipes()) != 3 {
		t.Errorf("Pipes = %d", len(f.Pipes()))
	}
	if len(f.PipesAt("A")) != 2 {
		t.Errorf("PipesAt(A) = %d", len(f.PipesAt("A")))
	}
	if got := f.PipesBetween("A", "B"); len(got) != 1 || got[0] != ab {
		t.Errorf("PipesBetween = %v", got)
	}
	if f.Pipe(ab.ID()) != ab {
		t.Error("Pipe lookup failed")
	}
	if _, err := f.AddPipe("A", "Z", ODU2); err == nil {
		t.Error("pipe to missing switch accepted")
	}
	if _, err := f.AddPipe("Z", "A", ODU2); err == nil {
		t.Error("pipe from missing switch accepted")
	}
}

func TestFabricMultigraph(t *testing.T) {
	f, _, _, _ := fabricABC(t)
	p2, err := f.AddPipe("A", "B", ODU3)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.PipesBetween("A", "B"); len(got) != 2 {
		t.Errorf("parallel pipes = %d, want 2", len(got))
	}
	if p2.TotalSlots() != 32 {
		t.Errorf("ODU3 pipe slots = %d", p2.TotalSlots())
	}
}

func TestRemovePipe(t *testing.T) {
	f, ab, _, _ := fabricABC(t)
	ab.Reserve("c1", 1)
	if err := f.RemovePipe(ab.ID()); err == nil {
		t.Error("removed a pipe carrying traffic")
	}
	ab.ReleaseOwner("c1")
	ab.ReserveShared("b1", 1)
	if err := f.RemovePipe(ab.ID()); err == nil {
		t.Error("removed a pipe with shared reservations")
	}
	ab.ReleaseShared("b1")
	if err := f.RemovePipe(ab.ID()); err != nil {
		t.Fatal(err)
	}
	if err := f.RemovePipe(ab.ID()); err == nil {
		t.Error("double remove accepted")
	}
	if len(f.PipesAt("A")) != 1 {
		t.Errorf("PipesAt(A) after removal = %d", len(f.PipesAt("A")))
	}
}

func TestFindPathDirectAndDetour(t *testing.T) {
	f, ab, bc, ac := fabricABC(t)
	path, err := f.FindPath("A", "C", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != ac {
		t.Errorf("path = %v, want direct A-C", path)
	}
	// Fill the direct pipe; path must detour via B.
	ac.Reserve("x", 8)
	path, err = f.FindPath("A", "C", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0] != ab || path[1] != bc {
		t.Errorf("detour path wrong: %v", path)
	}
	// Avoid set blocks the detour too.
	if _, err := f.FindPath("A", "C", 1, map[PipeID]bool{ab.ID(): true}); err == nil {
		t.Error("path found despite avoid set")
	}
}

func TestFindPathValidation(t *testing.T) {
	f, _, _, _ := fabricABC(t)
	if _, err := f.FindPath("Z", "C", 1, nil); err == nil {
		t.Error("unknown src accepted")
	}
	if _, err := f.FindPath("A", "Z", 1, nil); err == nil {
		t.Error("unknown dst accepted")
	}
	if _, err := f.FindPath("A", "A", 1, nil); err == nil {
		t.Error("src==dst accepted")
	}
}

func TestFindPathSkipsDownPipes(t *testing.T) {
	f, ab, bc, ac := fabricABC(t)
	ac.SetUp(false)
	path, err := f.FindPath("A", "C", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[0] != ab || path[1] != bc {
		t.Errorf("path = %v, want A-B-C", path)
	}
}

func TestReserveReleasePathAtomic(t *testing.T) {
	f, ab, bc, _ := fabricABC(t)
	_ = f
	bc.Reserve("other", 8) // bc full
	if err := ReservePath([]*Pipe{ab, bc}, "c1", 2); err == nil {
		t.Fatal("reserve over full pipe succeeded")
	}
	if ab.FreeSlots() != 8 {
		t.Errorf("rollback failed: ab free = %d", ab.FreeSlots())
	}
	bc.ReleaseOwner("other")
	if err := ReservePath([]*Pipe{ab, bc}, "c1", 2); err != nil {
		t.Fatal(err)
	}
	if ab.FreeSlots() != 6 || bc.FreeSlots() != 6 {
		t.Error("reserve path did not take slots")
	}
	if err := ReleasePath([]*Pipe{ab, bc}, "c1"); err != nil {
		t.Fatal(err)
	}
	if ab.FreeSlots() != 8 || bc.FreeSlots() != 8 {
		t.Error("release path did not free slots")
	}
	if err := ReleasePath([]*Pipe{ab, bc}, "c1"); err == nil {
		t.Error("double path release accepted")
	}
}

func TestSharedPathActivation(t *testing.T) {
	f, ab, bc, ac := fabricABC(t)
	_, _ = f, ac
	if err := ReserveSharedPath([]*Pipe{ab, bc}, "b1", 2); err != nil {
		t.Fatal(err)
	}
	if err := ReserveSharedPath([]*Pipe{ab, bc}, "b1", 2); err == nil {
		t.Error("duplicate shared path accepted")
	}
	if err := ActivatePath([]*Pipe{ab, bc}, "b1"); err != nil {
		t.Fatal(err)
	}
	if ab.UsedSlots() != 2 || bc.UsedSlots() != 2 {
		t.Error("activation did not allocate slots")
	}
	if len(ab.SharedOwners()) != 0 {
		t.Error("shared reservation survived activation")
	}
}

func TestActivatePathRollsBack(t *testing.T) {
	f, ab, bc, _ := fabricABC(t)
	_ = f
	ReserveSharedPath([]*Pipe{ab, bc}, "b1", 2)
	bc.Reserve("hog", 7) // bc has only 1 free slot; activation must fail
	if err := ActivatePath([]*Pipe{ab, bc}, "b1"); err == nil {
		t.Fatal("activation succeeded without capacity")
	}
	if ab.UsedSlots() != 0 {
		t.Error("rollback left slots allocated on ab")
	}
	if len(ab.SharedOwners()) != 1 || len(bc.SharedOwners()) != 1 {
		t.Error("rollback lost shared reservations")
	}
}

// Property: random reserve/release sequences never make free+used diverge
// from the total, and SlotsOf matches UsedSlots.
func TestPipeAccountingProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		p, _ := NewPipe("p", "A", "B", ODU3)
		owners := []string{"w", "x", "y", "z"}
		held := map[string]int{}
		for _, op := range ops {
			o := owners[op%4]
			n := int(op/4)%5 + 1
			if op%2 == 0 {
				if _, err := p.Reserve(o, n); err == nil {
					held[o] += n
				}
			} else if held[o] > 0 {
				p.ReleaseOwner(o)
				held[o] = 0
			}
			total := 0
			for _, v := range held {
				total += v
			}
			if p.UsedSlots() != total || p.FreeSlots() != 32-total {
				return false
			}
			for o2, v := range held {
				if len(p.SlotsOf(o2)) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPipeAccessorsAndReleaseSlots(t *testing.T) {
	p, _ := NewPipe("p1", "A", "B", ODU2)
	a, b := p.Ends()
	if a != "A" || b != "B" {
		t.Errorf("Ends = %s,%s", a, b)
	}
	if p.Level() != ODU2 {
		t.Errorf("Level = %v", p.Level())
	}
	if p.Other("B") != "A" {
		t.Error("Other(B)")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Other on non-endpoint did not panic")
			}
		}()
		p.Other("Z")
	}()

	p.Reserve("c1", 4)
	if err := p.ReleaseSlots("c1", 2); err != nil {
		t.Fatal(err)
	}
	if got := len(p.SlotsOf("c1")); got != 2 {
		t.Errorf("slots after partial release = %d", got)
	}
	// Highest indices released first: 0 and 1 remain.
	held := p.SlotsOf("c1")
	if held[0] != 0 || held[1] != 1 {
		t.Errorf("kept slots = %v, want lowest", held)
	}
	if err := p.ReleaseSlots("c1", 3); err == nil {
		t.Error("over-release accepted")
	}
	if err := p.ReleaseSlots("c1", 0); err == nil {
		t.Error("zero release accepted")
	}
	if err := p.ReleaseSlots("ghost", 1); err == nil {
		t.Error("unknown owner release accepted")
	}
}

func TestFabricFrom(t *testing.T) {
	f := FabricFrom(topo.Testbed())
	// Testbed has OTN switches at I, III, IV (not II).
	if !f.HasSwitch("I") || !f.HasSwitch("III") || !f.HasSwitch("IV") {
		t.Error("missing switches")
	}
	if f.HasSwitch("II") {
		t.Error("II should have no OTN switch")
	}
}

func TestReserveSharedValidation(t *testing.T) {
	p, _ := NewPipe("p1", "A", "B", ODU2)
	if err := p.ReserveShared("", 1); err == nil {
		t.Error("empty owner accepted")
	}
	if err := p.ReserveShared("b", 0); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestActivatePathMissingReservation(t *testing.T) {
	f, ab, bc, _ := fabricABC(t)
	_ = f
	// Reservation only on the first pipe: activation must roll back.
	ab.ReserveShared("b1", 2)
	if err := ActivatePath([]*Pipe{ab, bc}, "b1"); err == nil {
		t.Fatal("activation with partial reservation accepted")
	}
	if ab.UsedSlots() != 0 {
		t.Error("rollback left slots on ab")
	}
	if len(ab.SharedOwners()) != 1 {
		t.Error("rollback lost ab's reservation")
	}
}

func TestLevelStringUnknown(t *testing.T) {
	if Level(9).String() != "Level(9)" {
		t.Errorf("String = %q", Level(9).String())
	}
}

func TestReserveSharedPathDuplicateRollsBack(t *testing.T) {
	f, ab, bc, _ := fabricABC(t)
	_ = f
	bc.ReserveShared("b1", 1) // pre-existing on the second pipe
	if err := ReserveSharedPath([]*Pipe{ab, bc}, "b1", 1); err == nil {
		t.Fatal("duplicate shared path accepted")
	}
	if len(ab.SharedOwners()) != 0 {
		t.Error("rollback left reservation on ab")
	}
}
