package otn

import (
	"fmt"
	"sort"

	"griphon/internal/topo"
)

// PipeID identifies an OTN line pipe.
type PipeID string

// Pipe is an OTN line between two OTN switches, itself carried over a DWDM
// wavelength connection (the package does not know which one; the controller
// records that association). Its tributary slots are the groomable capacity.
//
// A pipe also books shared-mesh restoration reservations: backup circuits
// register how many slots they would need if activated. Shared reservations
// deliberately oversubscribe the free pool — that is the entire cost
// advantage of shared-mesh over 1+1 — so activation can fail under
// correlated failures.
type Pipe struct {
	id     PipeID
	a, b   topo.NodeID
	level  Level
	slots  []string       // owner per tributary slot, "" = free
	shared map[string]int // backup owner -> slots needed on activation
	up     bool
}

// NewPipe creates an operational pipe of the given level between a and b.
func NewPipe(id PipeID, a, b topo.NodeID, level Level) (*Pipe, error) {
	if id == "" {
		return nil, fmt.Errorf("otn: empty pipe ID")
	}
	if a == b {
		return nil, fmt.Errorf("otn: pipe %s is a self-loop at %s", id, a)
	}
	if level != ODU2 && level != ODU3 {
		return nil, fmt.Errorf("otn: pipe level must be ODU2 or ODU3, got %v", level)
	}
	return &Pipe{
		id: id, a: a, b: b, level: level,
		slots:  make([]string, level.Slots()),
		shared: make(map[string]int),
		up:     true,
	}, nil
}

// ID returns the pipe's identifier.
func (p *Pipe) ID() PipeID { return p.id }

// Ends returns the two OTN switches the pipe joins.
func (p *Pipe) Ends() (topo.NodeID, topo.NodeID) { return p.a, p.b }

// Has reports whether n is one of the pipe's endpoints.
func (p *Pipe) Has(n topo.NodeID) bool { return n == p.a || n == p.b }

// Other returns the far end from n; it panics if n is not an endpoint.
func (p *Pipe) Other(n topo.NodeID) topo.NodeID {
	switch n {
	case p.a:
		return p.b
	case p.b:
		return p.a
	}
	panic(fmt.Sprintf("otn: %s is not an endpoint of pipe %s", n, p.id))
}

// Level returns the pipe's ODU level.
func (p *Pipe) Level() Level { return p.level }

// Up reports whether the pipe is operational.
func (p *Pipe) Up() bool { return p.up }

// SetUp marks the pipe operational or failed (e.g. when the wavelength under
// it dies).
func (p *Pipe) SetUp(up bool) { p.up = up }

// TotalSlots returns the pipe's tributary slot count.
func (p *Pipe) TotalSlots() int { return len(p.slots) }

// FreeSlots returns the number of unallocated tributary slots.
func (p *Pipe) FreeSlots() int {
	n := 0
	for _, o := range p.slots {
		if o == "" {
			n++
		}
	}
	return n
}

// UsedSlots returns the number of allocated tributary slots.
func (p *Pipe) UsedSlots() int { return p.TotalSlots() - p.FreeSlots() }

// SlotsOf returns the slot indices owned by owner, ascending.
func (p *Pipe) SlotsOf(owner string) []int {
	var out []int
	for i, o := range p.slots {
		if o == owner && owner != "" {
			out = append(out, i)
		}
	}
	return out
}

// Reserve allocates n tributary slots to owner and returns their indices
// (lowest free first). It fails — without partial allocation — if fewer than
// n slots are free or the pipe is down.
func (p *Pipe) Reserve(owner string, n int) ([]int, error) {
	if owner == "" {
		return nil, fmt.Errorf("otn: empty owner")
	}
	if n <= 0 {
		return nil, fmt.Errorf("otn: non-positive slot count %d", n)
	}
	if !p.up {
		return nil, fmt.Errorf("otn: pipe %s is down", p.id)
	}
	if p.FreeSlots() < n {
		return nil, fmt.Errorf("otn: pipe %s has %d free slots, need %d", p.id, p.FreeSlots(), n)
	}
	var idx []int
	for i := range p.slots {
		if p.slots[i] == "" {
			p.slots[i] = owner
			idx = append(idx, i)
			if len(idx) == n {
				break
			}
		}
	}
	return idx, nil
}

// ReleaseOwner frees every slot held by owner and returns how many were
// freed. Releasing an owner with no slots is an error.
func (p *Pipe) ReleaseOwner(owner string) (int, error) {
	if owner == "" {
		return 0, fmt.Errorf("otn: empty owner")
	}
	n := 0
	for i, o := range p.slots {
		if o == owner {
			p.slots[i] = ""
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("otn: owner %s holds no slots on pipe %s", owner, p.id)
	}
	return n, nil
}

// ReleaseSlots frees exactly n of owner's slots (highest indices first),
// used when a circuit's rate is adjusted downward. It fails — without
// change — if owner holds fewer than n.
func (p *Pipe) ReleaseSlots(owner string, n int) error {
	if n <= 0 {
		return fmt.Errorf("otn: non-positive release count %d", n)
	}
	held := p.SlotsOf(owner)
	if len(held) < n {
		return fmt.Errorf("otn: owner %s holds %d slots on %s, cannot release %d", owner, len(held), p.id, n)
	}
	for i := 0; i < n; i++ {
		p.slots[held[len(held)-1-i]] = ""
	}
	return nil
}

// ReserveShared registers a shared-mesh restoration reservation: owner will
// need n slots if its backup is ever activated. Reservations may collectively
// exceed the free pool.
func (p *Pipe) ReserveShared(owner string, n int) error {
	if owner == "" {
		return fmt.Errorf("otn: empty owner")
	}
	if n <= 0 {
		return fmt.Errorf("otn: non-positive shared slot count %d", n)
	}
	if _, dup := p.shared[owner]; dup {
		return fmt.Errorf("otn: owner %s already holds a shared reservation on %s", owner, p.id)
	}
	p.shared[owner] = n
	return nil
}

// ReleaseShared drops owner's shared reservation.
func (p *Pipe) ReleaseShared(owner string) error {
	if _, ok := p.shared[owner]; !ok {
		return fmt.Errorf("otn: owner %s has no shared reservation on %s", p.id, owner)
	}
	delete(p.shared, owner)
	return nil
}

// RestorePipe reconstructs a journaled pipe: identity, level and operational
// flag. Slot occupancy is not part of the pipe record — recovery re-reserves
// slots from the committed connection records, the authoritative ownership
// statement.
func RestorePipe(id PipeID, a, b topo.NodeID, level Level, up bool) (*Pipe, error) {
	p, err := NewPipe(id, a, b, level)
	if err != nil {
		return nil, err
	}
	p.up = up
	return p, nil
}

// Owners returns the distinct owners holding tributary slots, sorted — the
// enumeration invariant auditors sweep.
func (p *Pipe) Owners() []string {
	set := map[string]bool{}
	for _, o := range p.slots {
		if o != "" {
			set[o] = true
		}
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// SharedOwners returns owners with shared reservations, sorted.
func (p *Pipe) SharedOwners() []string {
	out := make([]string, 0, len(p.shared))
	for o := range p.shared {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// SharedDemand returns the total slots all shared reservations would need if
// activated simultaneously.
func (p *Pipe) SharedDemand() int {
	n := 0
	for _, v := range p.shared {
		n += v
	}
	return n
}

// Activate converts owner's shared reservation into a real slot allocation,
// returning the slot indices. It fails if the reservation does not exist or
// the free pool cannot satisfy it right now (restoration blocking).
func (p *Pipe) Activate(owner string) ([]int, error) {
	n, ok := p.shared[owner]
	if !ok {
		return nil, fmt.Errorf("otn: owner %s has no shared reservation on %s", owner, p.id)
	}
	idx, err := p.Reserve(owner, n)
	if err != nil {
		return nil, fmt.Errorf("otn: activating %s on %s: %w", owner, p.id, err)
	}
	delete(p.shared, owner)
	return idx, nil
}
