// Package planner implements the paper's §4 "network resource planning"
// challenge: with dynamic services, the carrier must decide ahead of time
// where and how many spare resources (especially transponders) to deploy.
// Unlike POTS trunk planning, "the number of users is smaller and the cost of
// a line is far greater, making accurate planning far more critical" — so the
// planner works from an explicit per-pair demand forecast, sizes each node's
// transponder pool with the Erlang-B inverse for a target blocking
// probability, and adds restoration headroom.
package planner

import (
	"fmt"
	"math"
	"sort"

	"griphon/internal/topo"
)

// ErlangB returns the blocking probability of offered load (erlangs) on n
// servers, via the numerically stable recurrence.
func ErlangB(n int, erlangs float64) float64 {
	if n < 0 || erlangs < 0 {
		return 1
	}
	if erlangs == 0 {
		return 0
	}
	b := 1.0
	for k := 1; k <= n; k++ {
		b = erlangs * b / (float64(k) + erlangs*b)
	}
	return b
}

// ServersFor returns the smallest server count whose Erlang-B blocking is at
// most target for the offered load. target must be in (0,1).
func ServersFor(erlangs, target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("planner: target blocking %v outside (0,1)", target)
	}
	if erlangs < 0 {
		return 0, fmt.Errorf("planner: negative load %v", erlangs)
	}
	if erlangs == 0 {
		return 0, nil
	}
	for n := 1; ; n++ {
		if ErlangB(n, erlangs) <= target {
			return n, nil
		}
		if n > 1_000_000 {
			return 0, fmt.Errorf("planner: load %v needs implausibly many servers", erlangs)
		}
	}
}

// Demand is a per-site-pair offered load forecast in erlangs of wavelength
// connections (mean simultaneous connections requested).
type Demand map[[2]topo.SiteID]float64

// Set records the load for a pair (order-insensitive).
func (d Demand) Set(a, b topo.SiteID, erlangs float64) {
	d[canonPair(a, b)] = erlangs
}

// Get returns the load for a pair.
func (d Demand) Get(a, b topo.SiteID) float64 { return d[canonPair(a, b)] }

func canonPair(a, b topo.SiteID) [2]topo.SiteID {
	if b < a {
		a, b = b, a
	}
	return [2]topo.SiteID{a, b}
}

// Total returns the summed offered load.
func (d Demand) Total() float64 {
	var t float64
	for _, v := range d {
		t += v
	}
	return t
}

// Grow returns the forecast scaled for `years` ahead given a doubling period
// (the paper cites Forrester projecting inter-DC transport demand to "double
// or triple in the next two to four years": a 2-year doubling period is the
// aggressive end).
func (d Demand) Grow(years, doublingYears float64) Demand {
	if doublingYears <= 0 {
		doublingYears = 2
	}
	factor := math.Pow(2, years/doublingYears)
	out := make(Demand, len(d))
	for k, v := range d {
		out[k] = v * factor
	}
	return out
}

// NodeLoad aggregates pair demand onto home PoPs: every connection consumes a
// transponder at both endpoints' home nodes.
func NodeLoad(g *topo.Graph, d Demand) (map[topo.NodeID]float64, error) {
	out := map[topo.NodeID]float64{}
	for pair, erl := range d {
		if erl < 0 {
			return nil, fmt.Errorf("planner: negative demand for %v", pair)
		}
		for _, sid := range pair {
			s := g.Site(sid)
			if s == nil {
				return nil, fmt.Errorf("planner: unknown site %s", sid)
			}
			out[s.Home] += erl
		}
	}
	return out, nil
}

// Plan is the planner's output for one node.
type Plan struct {
	Node topo.NodeID
	// OfferedErlangs is the forecast load terminating at this node.
	OfferedErlangs float64
	// WorkingOTs is the Erlang-B pool size for the blocking target.
	WorkingOTs int
	// RestorationOTs is the extra headroom for failure re-provisioning.
	RestorationOTs int
	// Blocking is the predicted blocking with WorkingOTs installed.
	Blocking float64
}

// Total returns the full recommended pool.
func (p Plan) Total() int { return p.WorkingOTs + p.RestorationOTs }

// PlanOTs sizes every node's transponder pool for the demand forecast:
// Erlang-B inverse at the blocking target, plus restoration headroom —
// restorationShare of the working pool, rounded up (the shared-pool
// alternative to 1+1 doubling that makes GRIPhoN restoration "far less
// expensive", paper §1).
func PlanOTs(g *topo.Graph, d Demand, targetBlocking, restorationShare float64) ([]Plan, error) {
	if restorationShare < 0 {
		return nil, fmt.Errorf("planner: negative restoration share")
	}
	loads, err := NodeLoad(g, d)
	if err != nil {
		return nil, err
	}
	nodes := make([]topo.NodeID, 0, len(loads))
	for n := range loads {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	out := make([]Plan, 0, len(nodes))
	for _, n := range nodes {
		erl := loads[n]
		working, err := ServersFor(erl, targetBlocking)
		if err != nil {
			return nil, err
		}
		out = append(out, Plan{
			Node:           n,
			OfferedErlangs: erl,
			WorkingOTs:     working,
			RestorationOTs: int(math.Ceil(float64(working) * restorationShare)),
			Blocking:       ErlangB(working, erl),
		})
	}
	return out, nil
}
