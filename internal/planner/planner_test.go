package planner

import (
	"math"
	"testing"
	"testing/quick"

	"griphon/internal/topo"
)

func TestErlangBKnownValues(t *testing.T) {
	cases := []struct {
		n    int
		a    float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 0.2},
		{2, 2, 0.4},
		{5, 3, 0.1101}, // standard table value
		{10, 5, 0.0184},
	}
	for _, c := range cases {
		got := ErlangB(c.n, c.a)
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("ErlangB(%d, %v) = %.4f, want %.4f", c.n, c.a, got, c.want)
		}
	}
	if ErlangB(0, 5) != 1 {
		t.Error("zero servers should block everything")
	}
	if ErlangB(5, 0) != 0 {
		t.Error("zero load should never block")
	}
	if ErlangB(-1, 1) != 1 || ErlangB(1, -1) != 1 {
		t.Error("invalid inputs should block")
	}
}

// Property: blocking decreases in servers, increases in load.
func TestErlangBMonotoneProperty(t *testing.T) {
	prop := func(n uint8, tenthErl uint8) bool {
		servers := int(n%50) + 1
		a := float64(tenthErl) / 10
		b := ErlangB(servers, a)
		if b < 0 || b > 1 {
			return false
		}
		return ErlangB(servers+1, a) <= b && ErlangB(servers, a+1) >= b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestServersFor(t *testing.T) {
	n, err := ServersFor(5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ErlangB(n, 5) > 0.01 {
		t.Errorf("ServersFor result %d still blocks %.4f", n, ErlangB(n, 5))
	}
	if n > 1 && ErlangB(n-1, 5) <= 0.01 {
		t.Errorf("ServersFor result %d not minimal", n)
	}
	if got, _ := ServersFor(0, 0.01); got != 0 {
		t.Errorf("zero load needs %d servers", got)
	}
	if _, err := ServersFor(5, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := ServersFor(5, 1); err == nil {
		t.Error("target 1 accepted")
	}
	if _, err := ServersFor(-1, 0.1); err == nil {
		t.Error("negative load accepted")
	}
}

func TestDemandBasics(t *testing.T) {
	d := Demand{}
	d.Set("DC-A", "DC-B", 2)
	if d.Get("DC-B", "DC-A") != 2 {
		t.Error("pair canonicalization broken")
	}
	d.Set("DC-A", "DC-C", 1)
	if d.Total() != 3 {
		t.Errorf("Total = %v", d.Total())
	}
	grown := d.Grow(2, 2) // one doubling
	if math.Abs(grown.Total()-6) > 1e-9 {
		t.Errorf("grown total = %v, want 6", grown.Total())
	}
	if d.Total() != 3 {
		t.Error("Grow mutated the original")
	}
	// Default doubling period kicks in for nonsense input.
	if g := d.Grow(2, 0); math.Abs(g.Total()-6) > 1e-9 {
		t.Errorf("default doubling: %v", g.Total())
	}
}

func TestNodeLoad(t *testing.T) {
	g := topo.Testbed()
	d := Demand{}
	d.Set("DC-A", "DC-B", 2) // homes I and III
	d.Set("DC-A", "DC-C", 1) // homes I and IV
	loads, err := NodeLoad(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if loads["I"] != 3 || loads["III"] != 2 || loads["IV"] != 1 {
		t.Errorf("loads = %v", loads)
	}
	d.Set("DC-A", "DC-Z", 1)
	if _, err := NodeLoad(g, d); err == nil {
		t.Error("unknown site accepted")
	}
	bad := Demand{}
	bad.Set("DC-A", "DC-B", -1)
	if _, err := NodeLoad(g, bad); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestPlanOTs(t *testing.T) {
	g := topo.Testbed()
	d := Demand{}
	d.Set("DC-A", "DC-B", 4)
	d.Set("DC-A", "DC-C", 2)
	plans, err := PlanOTs(g, d, 0.01, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("plans = %d nodes", len(plans))
	}
	byNode := map[topo.NodeID]Plan{}
	for _, p := range plans {
		byNode[p.Node] = p
		if p.Blocking > 0.01 {
			t.Errorf("node %s planned blocking %.4f > target", p.Node, p.Blocking)
		}
		if p.RestorationOTs < 1 {
			t.Errorf("node %s has no restoration headroom", p.Node)
		}
		if p.Total() != p.WorkingOTs+p.RestorationOTs {
			t.Errorf("node %s Total inconsistent", p.Node)
		}
	}
	// Node I carries 6 erlangs; III carries 4; I must get more OTs.
	if byNode["I"].WorkingOTs <= byNode["III"].WorkingOTs {
		t.Errorf("I (%d OTs) should exceed III (%d OTs)",
			byNode["I"].WorkingOTs, byNode["III"].WorkingOTs)
	}
	if _, err := PlanOTs(g, d, 0.01, -1); err == nil {
		t.Error("negative restoration share accepted")
	}
}

// Property: planned pools always meet the blocking target.
func TestPlanMeetsTargetProperty(t *testing.T) {
	g := topo.Testbed()
	prop := func(a, b, c uint8) bool {
		d := Demand{}
		d.Set("DC-A", "DC-B", float64(a%40))
		d.Set("DC-A", "DC-C", float64(b%40))
		d.Set("DC-B", "DC-C", float64(c%40))
		plans, err := PlanOTs(g, d, 0.02, 0)
		if err != nil {
			return false
		}
		for _, p := range plans {
			if p.Blocking > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
