// Package roadm models the reconfigurable optical add/drop multiplexers of
// the DWDM layer (paper §2.1): multi-degree nodes whose add/drop ports are
// colorless (any port, any wavelength) and non-directional (any port, any
// degree), plus per-wavelength express cross-connects between degrees. The
// spectrum on each fiber is tracked by internal/optics; this package tracks
// the switching state INSIDE each node, including the finite add/drop port
// bank — a real blocking dimension the paper's pooled-transponder design
// depends on.
package roadm

import (
	"fmt"
	"sort"

	"griphon/internal/optics"
	"griphon/internal/topo"
)

// Node is one ROADM's switching state.
type Node struct {
	id      topo.NodeID
	degrees map[topo.LinkID]bool

	// addDropTotal is the size of the colorless/directionless add-drop
	// bank.
	addDropTotal int
	addDropUsed  int

	// adds records terminations: channel+degree -> owner.
	adds map[termKey]string
	// expresses records pass-throughs: channel+degree pair -> owner.
	expresses map[exprKey]string
	// byOwner indexes all state for O(1) release.
	byOwner map[string][]any

	// reconfigs counts configuration operations (EMS visibility).
	reconfigs int
}

type termKey struct {
	ch  optics.Channel
	deg topo.LinkID
}

type exprKey struct {
	ch      optics.Channel
	in, out topo.LinkID
}

// NewNode creates a ROADM with the given degrees (its incident fiber links)
// and add/drop bank size.
func NewNode(id topo.NodeID, degrees []topo.LinkID, addDropPorts int) (*Node, error) {
	if len(degrees) == 0 {
		return nil, fmt.Errorf("roadm: node %s has no degrees", id)
	}
	if addDropPorts <= 0 {
		return nil, fmt.Errorf("roadm: node %s needs a positive add/drop bank", id)
	}
	n := &Node{
		id:           id,
		degrees:      make(map[topo.LinkID]bool, len(degrees)),
		addDropTotal: addDropPorts,
		adds:         make(map[termKey]string),
		expresses:    make(map[exprKey]string),
		byOwner:      make(map[string][]any),
	}
	for _, d := range degrees {
		if n.degrees[d] {
			return nil, fmt.Errorf("roadm: node %s duplicate degree %s", id, d)
		}
		n.degrees[d] = true
	}
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() topo.NodeID { return n.id }

// Degree returns the number of fiber degrees.
func (n *Node) Degree() int { return len(n.degrees) }

// AddDropFree returns the number of free add/drop ports.
func (n *Node) AddDropFree() int { return n.addDropTotal - n.addDropUsed }

// AddDropUsed returns the number of add/drop ports in use.
func (n *Node) AddDropUsed() int { return n.addDropUsed }

// Reconfigs returns the number of configuration operations performed.
func (n *Node) Reconfigs() int { return n.reconfigs }

// Terminate configures an add/drop termination: channel ch arriving/leaving
// on the given degree is dropped to (and added from) a colorless,
// non-directional port. It consumes one add/drop port.
func (n *Node) Terminate(ch optics.Channel, deg topo.LinkID, owner string) error {
	if owner == "" {
		return fmt.Errorf("roadm: empty owner at %s", n.id)
	}
	if !n.degrees[deg] {
		return fmt.Errorf("roadm: node %s has no degree %s", n.id, deg)
	}
	k := termKey{ch, deg}
	if cur, busy := n.adds[k]; busy {
		return fmt.Errorf("roadm: %s channel %d on degree %s already terminated by %s", n.id, ch, deg, cur)
	}
	if n.AddDropFree() == 0 {
		return fmt.Errorf("roadm: %s add/drop bank exhausted (%d ports)", n.id, n.addDropTotal)
	}
	n.adds[k] = owner
	n.addDropUsed++
	n.byOwner[owner] = append(n.byOwner[owner], k)
	n.reconfigs++
	return nil
}

// Express configures a pass-through of channel ch from degree in to degree
// out (order-insensitive; the connection is bidirectional).
func (n *Node) Express(ch optics.Channel, in, out topo.LinkID, owner string) error {
	if owner == "" {
		return fmt.Errorf("roadm: empty owner at %s", n.id)
	}
	if !n.degrees[in] {
		return fmt.Errorf("roadm: node %s has no degree %s", n.id, in)
	}
	if !n.degrees[out] {
		return fmt.Errorf("roadm: node %s has no degree %s", n.id, out)
	}
	if in == out {
		return fmt.Errorf("roadm: express at %s cannot loop degree %s back", n.id, in)
	}
	k := canonExpr(ch, in, out)
	if cur, busy := n.expresses[k]; busy {
		return fmt.Errorf("roadm: %s channel %d between %s and %s already expressed by %s", n.id, ch, in, out, cur)
	}
	// The same channel cannot be both terminated and expressed on a
	// degree.
	for _, d := range []topo.LinkID{in, out} {
		if cur, busy := n.adds[termKey{ch, d}]; busy {
			return fmt.Errorf("roadm: %s channel %d on %s is terminated by %s", n.id, ch, d, cur)
		}
	}
	n.expresses[k] = owner
	n.byOwner[owner] = append(n.byOwner[owner], k)
	n.reconfigs++
	return nil
}

func canonExpr(ch optics.Channel, a, b topo.LinkID) exprKey {
	if b < a {
		a, b = b, a
	}
	return exprKey{ch, a, b}
}

// ReleaseOwner removes every termination and express belonging to owner and
// returns how many entries were released.
func (n *Node) ReleaseOwner(owner string) int {
	entries := n.byOwner[owner]
	for _, e := range entries {
		switch k := e.(type) {
		case termKey:
			delete(n.adds, k)
			n.addDropUsed--
		case exprKey:
			delete(n.expresses, k)
		}
		n.reconfigs++
	}
	delete(n.byOwner, owner)
	return len(entries)
}

// OwnerAt reports who terminates ch on deg ("" if nobody).
func (n *Node) OwnerAt(ch optics.Channel, deg topo.LinkID) string {
	return n.adds[termKey{ch, deg}]
}

// ExpressedBy reports who expresses ch between the two degrees.
func (n *Node) ExpressedBy(ch optics.Channel, a, b topo.LinkID) string {
	return n.expresses[canonExpr(ch, a, b)]
}

// Owners returns every owner with state at this node, sorted.
func (n *Node) Owners() []string {
	out := make([]string, 0, len(n.byOwner))
	for o := range n.byOwner {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Layer is the set of ROADMs across the network.
type Layer struct {
	nodes map[topo.NodeID]*Node
}

// NewLayer builds a ROADM at every node of g with the given add/drop bank
// size.
func NewLayer(g *topo.Graph, addDropPorts int) (*Layer, error) {
	l := &Layer{nodes: make(map[topo.NodeID]*Node)}
	for _, n := range g.Nodes() {
		var degrees []topo.LinkID
		for _, lk := range g.LinksAt(n.ID) {
			degrees = append(degrees, lk.ID)
		}
		node, err := NewNode(n.ID, degrees, addDropPorts)
		if err != nil {
			return nil, err
		}
		l.nodes[n.ID] = node
	}
	return l, nil
}

// Node returns the ROADM at id, or nil.
func (l *Layer) Node(id topo.NodeID) *Node { return l.nodes[id] }

// ConfigureSegment programs one transparent segment of a lightpath: channel
// ch is terminated at the segment's first and last node and expressed through
// every intermediate one. It rolls back on failure so a half-configured
// segment never lingers. owner must be unique per segment (e.g. "C0001#seg0")
// so rollback cannot disturb the same connection's other segments at a shared
// regeneration node.
func (l *Layer) ConfigureSegment(nodes []topo.NodeID, links []topo.LinkID, ch optics.Channel, owner string) error {
	if len(nodes) < 2 || len(links) != len(nodes)-1 {
		return fmt.Errorf("roadm: malformed segment (%d nodes, %d links)", len(nodes), len(links))
	}
	done := 0
	fail := func(err error) error {
		for i := 0; i < done; i++ {
			l.nodes[nodes[i]].ReleaseOwner(owner)
		}
		return err
	}
	for i, nid := range nodes {
		node := l.nodes[nid]
		if node == nil {
			return fail(fmt.Errorf("roadm: unknown node %s", nid))
		}
		var err error
		switch i {
		case 0:
			err = node.Terminate(ch, links[0], owner)
		case len(nodes) - 1:
			err = node.Terminate(ch, links[len(links)-1], owner)
		default:
			err = node.Express(ch, links[i-1], links[i], owner)
		}
		if err != nil {
			return fail(err)
		}
		done++
	}
	return nil
}

// ReleaseSegment removes owner's state at every listed node.
func (l *Layer) ReleaseSegment(nodes []topo.NodeID, owner string) {
	for _, nid := range nodes {
		if n := l.nodes[nid]; n != nil {
			n.ReleaseOwner(owner)
		}
	}
}

// TotalReconfigs sums configuration operations across the layer.
func (l *Layer) TotalReconfigs() int {
	total := 0
	for _, n := range l.nodes {
		total += n.Reconfigs()
	}
	return total
}
