package roadm

import (
	"testing"
	"testing/quick"

	"griphon/internal/optics"
	"griphon/internal/topo"
)

func node3(t *testing.T, ports int) *Node {
	t.Helper()
	n, err := NewNode("I", []topo.LinkID{"I-II", "I-III", "I-IV"}, ports)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode("I", nil, 4); err == nil {
		t.Error("degreeless node accepted")
	}
	if _, err := NewNode("I", []topo.LinkID{"a"}, 0); err == nil {
		t.Error("zero add/drop accepted")
	}
	if _, err := NewNode("I", []topo.LinkID{"a", "a"}, 4); err == nil {
		t.Error("duplicate degree accepted")
	}
}

func TestTerminate(t *testing.T) {
	n := node3(t, 2)
	if n.Degree() != 3 {
		t.Errorf("degree = %d", n.Degree())
	}
	if err := n.Terminate(1, "I-IV", "c1"); err != nil {
		t.Fatal(err)
	}
	if n.AddDropUsed() != 1 || n.AddDropFree() != 1 {
		t.Errorf("ports: used=%d free=%d", n.AddDropUsed(), n.AddDropFree())
	}
	if n.OwnerAt(1, "I-IV") != "c1" {
		t.Errorf("owner = %q", n.OwnerAt(1, "I-IV"))
	}
	// Same channel+degree conflicts; same channel on another degree fine.
	if err := n.Terminate(1, "I-IV", "c2"); err == nil {
		t.Error("conflicting termination accepted")
	}
	if err := n.Terminate(1, "I-III", "c2"); err != nil {
		t.Errorf("distinct-degree termination rejected: %v", err)
	}
	// Bank exhausted.
	if err := n.Terminate(2, "I-II", "c3"); err == nil {
		t.Error("termination beyond the add/drop bank accepted")
	}
	// Validation.
	if err := n.Terminate(3, "nope", "c4"); err == nil {
		t.Error("unknown degree accepted")
	}
	if err := n.Terminate(3, "I-II", ""); err == nil {
		t.Error("empty owner accepted")
	}
}

func TestExpress(t *testing.T) {
	n := node3(t, 4)
	if err := n.Express(5, "I-II", "I-III", "c1"); err != nil {
		t.Fatal(err)
	}
	// Order-insensitive lookup and conflict.
	if n.ExpressedBy(5, "I-III", "I-II") != "c1" {
		t.Error("express lookup not symmetric")
	}
	if err := n.Express(5, "I-III", "I-II", "c2"); err == nil {
		t.Error("conflicting express accepted")
	}
	// Same channel different degree pair is fine.
	if err := n.Express(5, "I-II", "I-IV", "c2"); err != nil {
		t.Errorf("distinct pair rejected: %v", err)
	}
	// Express does not consume add/drop ports.
	if n.AddDropUsed() != 0 {
		t.Error("express consumed add/drop ports")
	}
	// Validation.
	if err := n.Express(5, "I-II", "I-II", "c3"); err == nil {
		t.Error("loopback express accepted")
	}
	if err := n.Express(5, "nope", "I-II", "c3"); err == nil {
		t.Error("unknown in-degree accepted")
	}
	if err := n.Express(5, "I-II", "nope", "c3"); err == nil {
		t.Error("unknown out-degree accepted")
	}
	if err := n.Express(5, "I-II", "I-III", ""); err == nil {
		t.Error("empty owner accepted")
	}
}

func TestTerminateExpressConflict(t *testing.T) {
	n := node3(t, 4)
	n.Terminate(7, "I-II", "c1")
	if err := n.Express(7, "I-II", "I-III", "c2"); err == nil {
		t.Error("express over a terminated channel/degree accepted")
	}
}

func TestReleaseOwner(t *testing.T) {
	n := node3(t, 4)
	n.Terminate(1, "I-II", "c1")
	n.Terminate(2, "I-III", "c1")
	n.Express(3, "I-II", "I-IV", "c1")
	n.Terminate(4, "I-IV", "c2")
	if got := n.ReleaseOwner("c1"); got != 3 {
		t.Errorf("released %d entries, want 3", got)
	}
	if n.AddDropUsed() != 1 {
		t.Errorf("ports used after release = %d, want 1 (c2)", n.AddDropUsed())
	}
	if n.OwnerAt(4, "I-IV") != "c2" {
		t.Error("release disturbed another owner")
	}
	if got := n.ReleaseOwner("c1"); got != 0 {
		t.Errorf("double release freed %d", got)
	}
	owners := n.Owners()
	if len(owners) != 1 || owners[0] != "c2" {
		t.Errorf("owners = %v", owners)
	}
}

func TestLayerConfigureSegment(t *testing.T) {
	g := topo.Testbed()
	l, err := NewLayer(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []topo.NodeID{"I", "II", "III", "IV"}
	links := []topo.LinkID{"I-II", "II-III", "III-IV"}
	if err := l.ConfigureSegment(nodes, links, 1, "c1#seg0"); err != nil {
		t.Fatal(err)
	}
	if l.Node("I").AddDropUsed() != 1 || l.Node("IV").AddDropUsed() != 1 {
		t.Error("terminations missing at segment ends")
	}
	if l.Node("II").AddDropUsed() != 0 {
		t.Error("intermediate consumed an add/drop port")
	}
	if l.Node("II").ExpressedBy(1, "I-II", "II-III") != "c1#seg0" {
		t.Error("express missing at II")
	}
	if l.TotalReconfigs() != 4 {
		t.Errorf("reconfigs = %d, want 4", l.TotalReconfigs())
	}
	l.ReleaseSegment(nodes, "c1#seg0")
	if l.Node("I").AddDropUsed() != 0 || l.Node("II").ExpressedBy(1, "I-II", "II-III") != "" {
		t.Error("release incomplete")
	}
}

func TestLayerConfigureSegmentRollsBack(t *testing.T) {
	g := topo.Testbed()
	l, err := NewLayer(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust IV's single port so the segment fails at its last node.
	l.Node("IV").Terminate(9, "III-IV", "hog")
	nodes := []topo.NodeID{"I", "III", "IV"}
	links := []topo.LinkID{"I-III", "III-IV"}
	if err := l.ConfigureSegment(nodes, links, 9, "c1#seg0"); err == nil {
		t.Fatal("segment over a full bank accepted")
	}
	// I and III must have been rolled back.
	if l.Node("I").AddDropUsed() != 0 {
		t.Error("rollback left a termination at I")
	}
	if len(l.Node("III").Owners()) != 0 {
		t.Error("rollback left state at III")
	}
}

func TestLayerConfigureSegmentValidation(t *testing.T) {
	g := topo.Testbed()
	l, _ := NewLayer(g, 8)
	if err := l.ConfigureSegment([]topo.NodeID{"I"}, nil, 1, "x"); err == nil {
		t.Error("single-node segment accepted")
	}
	if err := l.ConfigureSegment([]topo.NodeID{"I", "Z"}, []topo.LinkID{"I-IV"}, 1, "x"); err == nil {
		t.Error("unknown node accepted")
	}
}

// Property: any sequence of terminate/express/release keeps the add/drop
// count equal to the number of live terminations.
func TestPortAccountingProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		n, _ := NewNode("N", []topo.LinkID{"a", "b", "c"}, 6)
		degs := []topo.LinkID{"a", "b", "c"}
		owners := []string{"x", "y", "z"}
		live := map[string]int{}
		for _, op := range ops {
			owner := owners[op%3]
			ch := optics.Channel(op%5 + 1)
			switch (op / 16) % 3 {
			case 0:
				if n.Terminate(ch, degs[op%3], owner) == nil {
					live[owner]++
				}
			case 1:
				n.Express(ch, degs[op%3], degs[(op+1)%3], owner) //lint:allow errcheck may conflict
			case 2:
				n.ReleaseOwner(owner)
				live[owner] = 0
			}
			total := 0
			for _, v := range live {
				total += v
			}
			if n.AddDropUsed() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
