package rwa

import (
	"fmt"

	"griphon/internal/optics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// AssignPolicy selects how a wavelength is chosen among the channels that are
// free on every link of a transparent segment.
type AssignPolicy int

const (
	// FirstFit picks the lowest-numbered common free channel. Simple and
	// packs the spectrum from the bottom; the default.
	FirstFit AssignPolicy = iota
	// MostUsed picks the common free channel that is busiest elsewhere in
	// the network, concentrating usage so future paths find whole
	// channels free (needs global state, like a real controller has).
	MostUsed
	// LeastUsed picks the globally least-used common free channel,
	// spreading load (usually worse; kept as an ablation baseline).
	LeastUsed
	// RandomFit picks uniformly at random among common free channels.
	RandomFit
)

func (p AssignPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case MostUsed:
		return "most-used"
	case LeastUsed:
		return "least-used"
	case RandomFit:
		return "random"
	}
	return fmt.Sprintf("AssignPolicy(%d)", int(p))
}

// AssignWavelength chooses a channel free on every link in links, under the
// policy. rng is only required for RandomFit. It fails when no common free
// channel exists (wavelength blocking).
func AssignWavelength(plant *optics.Plant, links []topo.LinkID, policy AssignPolicy, rng *sim.Rand) (optics.Channel, error) {
	if len(links) == 0 {
		return 0, fmt.Errorf("rwa: no links to assign a wavelength on")
	}
	free := plant.ContinuityChannels(links)
	if len(free) == 0 {
		return 0, fmt.Errorf("rwa: no common free wavelength on %v", links)
	}
	switch policy {
	case FirstFit:
		return free[0], nil
	case RandomFit:
		if rng == nil {
			return 0, fmt.Errorf("rwa: RandomFit needs a random source")
		}
		return free[rng.Intn(len(free))], nil
	case MostUsed, LeastUsed:
		usage := channelUsage(plant)
		best := free[0]
		bestU := usage[best]
		for _, ch := range free[1:] {
			u := usage[ch]
			if (policy == MostUsed && u > bestU) || (policy == LeastUsed && u < bestU) {
				best, bestU = ch, u
			}
		}
		return best, nil
	default:
		return 0, fmt.Errorf("rwa: unknown policy %v", policy)
	}
}

// channelUsage counts, for every channel, how many links currently carry it.
func channelUsage(plant *optics.Plant) map[optics.Channel]int {
	usage := make(map[optics.Channel]int)
	for _, l := range plant.Graph().Links() {
		for _, ch := range plant.Spectrum(l.ID).UsedChannels() {
			usage[ch]++
		}
	}
	return usage
}
