package rwa

import (
	"fmt"

	"griphon/internal/optics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// AssignPolicy selects how a wavelength is chosen among the channels that are
// free on every link of a transparent segment.
type AssignPolicy int

const (
	// FirstFit picks the lowest-numbered common free channel. Simple and
	// packs the spectrum from the bottom; the default.
	FirstFit AssignPolicy = iota
	// MostUsed picks the common free channel that is busiest elsewhere in
	// the network, concentrating usage so future paths find whole
	// channels free (needs global state, like a real controller has).
	MostUsed
	// LeastUsed picks the globally least-used common free channel,
	// spreading load (usually worse; kept as an ablation baseline).
	LeastUsed
	// RandomFit picks uniformly at random among common free channels.
	RandomFit
)

func (p AssignPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case MostUsed:
		return "most-used"
	case LeastUsed:
		return "least-used"
	case RandomFit:
		return "random"
	}
	return fmt.Sprintf("AssignPolicy(%d)", int(p))
}

// blockedError reports wavelength blocking on a segment. Formatting the link
// list is deferred to Error(): under load, blocked probes are the common case
// on this path and most of these errors are only branched on, never printed.
type blockedError struct{ links []topo.LinkID }

func (e *blockedError) Error() string {
	return fmt.Sprintf("rwa: no common free wavelength on %v", e.links)
}

// AssignWavelength chooses a channel free on every link in links, under the
// policy. rng is only required for RandomFit. It fails when no common free
// channel exists (wavelength blocking).
//
// The continuity set is a word-wise AND across the segment's spectrum
// bitsets, and the most-used/least-used policies read the plant's incremental
// per-channel usage counters instead of rescanning every link.
func AssignWavelength(plant *optics.Plant, links []topo.LinkID, policy AssignPolicy, rng *sim.Rand) (optics.Channel, error) {
	if len(links) == 0 {
		return 0, fmt.Errorf("rwa: no links to assign a wavelength on")
	}
	free, ok := plant.CommonFree(links)
	if !ok || free.Empty() {
		free.Recycle()
		return 0, &blockedError{links: append([]topo.LinkID(nil), links...)}
	}
	defer free.Recycle()
	switch policy {
	case FirstFit:
		ch, _ := free.First()
		return ch, nil
	case RandomFit:
		if rng == nil {
			return 0, fmt.Errorf("rwa: RandomFit needs a random source")
		}
		ch, _ := free.Nth(rng.Intn(free.Count()))
		return ch, nil
	case MostUsed, LeastUsed:
		var best optics.Channel
		bestU := 0
		free.ForEach(func(ch optics.Channel) bool {
			u := plant.ChannelUsage(ch)
			if best == 0 ||
				(policy == MostUsed && u > bestU) ||
				(policy == LeastUsed && u < bestU) {
				best, bestU = ch, u
			}
			return true
		})
		return best, nil
	default:
		return 0, fmt.Errorf("rwa: unknown policy %v", policy)
	}
}
