package rwa

import (
	"testing"

	"griphon/internal/optics"
	"griphon/internal/topo"
)

func BenchmarkShortestPathBackbone(b *testing.B) {
	g := topo.Backbone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ShortestPath(g, "SEA", "ATL", ByKM, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKShortestBackbone(b *testing.B) {
	g := topo.Backbone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KShortest(g, "SEA", "ATL", 4, ByHops, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindRouteBackbone(b *testing.B) {
	g := topo.Backbone()
	plant, err := optics.NewPlant(g, optics.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FindRoute(plant, "SEA", "NYC", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindRouteGrid64(b *testing.B) {
	g, err := topo.Grid(8, 8, 300)
	if err != nil {
		b.Fatal(err)
	}
	plant, err := optics.NewPlant(g, optics.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FindRoute(plant, "G0000", "G0707", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisjointPair(b *testing.B) {
	g := topo.Backbone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DisjointPair(g, "SEA", "ATL", 4, ByHops, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}
