package rwa

import (
	"testing"

	"griphon/internal/optics"
	"griphon/internal/topo"
)

// benchGraphs returns the two topologies the ISSUE's micro-benchmarks run
// on: a deterministic 8x8 grid and a 60-PoP random continental mesh.
func benchGrid(b *testing.B) *topo.Graph {
	b.Helper()
	g, err := topo.Grid(8, 8, 300)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchContinental(b *testing.B) *topo.Graph {
	b.Helper()
	g, err := topo.Continental(60, 6, 7)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkShortestPath(b *testing.B) {
	b.Run("grid64", func(b *testing.B) {
		g := benchGrid(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ShortestPath(g, "G0000", "G0707", ByKM, Constraints{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("continental", func(b *testing.B) {
		g := benchContinental(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ShortestPath(g, "P000", "P059", ByKM, Constraints{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The warm path: a recycled result path and the pooled scratch arena
	// mean repeated searches allocate nothing at all.
	b.Run("grid64-warm", func(b *testing.B) {
		g := benchGrid(b)
		var p topo.Path
		if err := ShortestPathInto(g, "G0000", "G0707", ByKM, Constraints{}, &p); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ShortestPathInto(g, "G0000", "G0707", ByKM, Constraints{}, &p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("continental-warm", func(b *testing.B) {
		g := benchContinental(b)
		var p topo.Path
		if err := ShortestPathInto(g, "P000", "P059", ByKM, Constraints{}, &p); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ShortestPathInto(g, "P000", "P059", ByKM, Constraints{}, &p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKShortest(b *testing.B) {
	b.Run("grid64", func(b *testing.B) {
		g := benchGrid(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := KShortest(g, "G0000", "G0707", 4, ByHops, Constraints{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("continental", func(b *testing.B) {
		g := benchContinental(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := KShortest(g, "P000", "P059", 4, ByHops, Constraints{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkContinuityChannels measures the wavelength-continuity intersection
// across a multi-hop segment on a partially loaded plant.
func BenchmarkContinuityChannels(b *testing.B) {
	bench := func(b *testing.B, g *topo.Graph, src, dst topo.NodeID) {
		b.Helper()
		plant, err := optics.NewPlant(g, optics.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Load every third channel on every link so the intersection does
		// real work instead of returning the full grid.
		for _, l := range g.Links() {
			for ch := optics.Channel(1); int(ch) <= plant.Config().Channels; ch += 3 {
				if err := plant.Spectrum(l.ID).Reserve(ch, "bg"); err != nil {
					b.Fatal(err)
				}
			}
		}
		p, err := ShortestPath(g, src, dst, ByKM, Constraints{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if free := plant.ContinuityChannels(p.Links); len(free) == 0 {
				b.Fatal("no common free channel")
			}
		}
	}
	b.Run("grid64", func(b *testing.B) {
		bench(b, benchGrid(b), "G0000", "G0707")
	})
	b.Run("continental", func(b *testing.B) {
		bench(b, benchContinental(b), "P000", "P059")
	})
}

func BenchmarkShortestPathBackbone(b *testing.B) {
	g := topo.Backbone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ShortestPath(g, "SEA", "ATL", ByKM, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKShortestBackbone(b *testing.B) {
	g := topo.Backbone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KShortest(g, "SEA", "ATL", 4, ByHops, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindRouteBackbone(b *testing.B) {
	g := topo.Backbone()
	plant, err := optics.NewPlant(g, optics.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FindRoute(plant, "SEA", "NYC", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindRouteGrid64(b *testing.B) {
	g := benchGrid(b)
	plant, err := optics.NewPlant(g, optics.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindRoute(plant, "G0000", "G0707", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisjointPair(b *testing.B) {
	g := topo.Backbone()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DisjointPair(g, "SEA", "ATL", 4, ByHops, Constraints{}); err != nil {
			b.Fatal(err)
		}
	}
}
