package rwa

import (
	"math"
	"sync"

	"griphon/internal/topo"
)

// This file is the compiled core of the RWA engine: Dijkstra and Yen run
// entirely on the dense integer indices of topo.Index, with all per-search
// state (distance, predecessor, visited, avoid sets, the heap) living in a
// pooled scratch arena so the warm path allocates nothing. String IDs appear
// only at the API boundary, where results are converted back to topo.Path.
//
// Determinism contract: because topo.Index assigns indices in sorted-ID
// order, every comparison below (heap tie-breaks on node index, predecessor
// tie-breaks on link index, candidate ordering on node-index sequences) is
// order-isomorphic to the string comparisons of the original map-based
// implementation, so route selections are byte-identical.

// heapItem is a priority-queue entry. Lazy deletion: a node may appear more
// than once; stale entries are skipped via the visited array.
type heapItem struct {
	dist float64
	node int32
}

func heapLess(a, b heapItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.node < b.node // deterministic tie-break (= lowest NodeID)
}

func heapPush(h []heapItem, it heapItem) []heapItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []heapItem) (heapItem, []heapItem) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && heapLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && heapLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top, h
}

// scratch is a reusable search arena sized for one topology. All slices are
// indexed by dense node/link index.
type scratch struct {
	dist     []float64
	prevLink []int32
	prevNode []int32
	visited  []bool

	// avoid sets for the current search; dijkstra reads them, callers
	// (boundary conversion, Yen, DisjointPair) maintain them.
	avoidLink []bool
	avoidNode []bool

	heap []heapItem

	// path extraction buffers (dst->src order before reversal).
	nodeBuf []int32
	linkBuf []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(nNodes, nLinks int) *scratch {
	s := scratchPool.Get().(*scratch)
	s.resize(nNodes, nLinks)
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

func (s *scratch) resize(nNodes, nLinks int) {
	if cap(s.dist) < nNodes {
		s.dist = make([]float64, nNodes)
		s.prevLink = make([]int32, nNodes)
		s.prevNode = make([]int32, nNodes)
		s.visited = make([]bool, nNodes)
		s.avoidNode = make([]bool, nNodes)
	}
	s.dist = s.dist[:nNodes]
	s.prevLink = s.prevLink[:nNodes]
	s.prevNode = s.prevNode[:nNodes]
	s.visited = s.visited[:nNodes]
	s.avoidNode = s.avoidNode[:nNodes]
	if cap(s.avoidLink) < nLinks {
		s.avoidLink = make([]bool, nLinks)
	}
	s.avoidLink = s.avoidLink[:nLinks]
	for i := range s.avoidLink {
		s.avoidLink[i] = false
	}
	for i := range s.avoidNode {
		s.avoidNode[i] = false
	}
	s.heap = s.heap[:0]
}

// resetSearch clears only the per-search state, leaving the avoid sets alone
// (Yen reuses them across many searches).
func (s *scratch) resetSearch() {
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
	}
	for i := range s.visited {
		s.visited[i] = false
	}
	s.heap = s.heap[:0]
}

// linkWeight returns the search weight of link li under the metric.
func linkWeight(ix *topo.Index, li int32, m Metric) float64 {
	if m == ByKM {
		return ix.LinkKM(li)
	}
	return 1
}

// dijkstra runs an integer-indexed Dijkstra from src, stopping once dst is
// settled. It honours s.avoidLink/s.avoidNode (the endpoints are always
// allowed) and reports whether dst was reached; on success the predecessor
// arrays describe the path. Semantics — including the equal-distance
// prefer-lowest-link tie-break — mirror the original map implementation.
func dijkstra(ix *topo.Index, src, dst int32, m Metric, s *scratch) bool {
	s.resetSearch()
	s.dist[src] = 0
	s.heap = heapPush(s.heap, heapItem{dist: 0, node: src})
	for len(s.heap) > 0 {
		var it heapItem
		it, s.heap = heapPop(s.heap)
		if s.visited[it.node] {
			continue
		}
		s.visited[it.node] = true
		if it.node == dst {
			return true
		}
		links, nodes := ix.Adjacency(it.node)
		for i, li := range links {
			if s.avoidLink[li] {
				continue
			}
			o := nodes[i]
			if s.visited[o] {
				continue
			}
			if o != dst && o != src && s.avoidNode[o] {
				continue
			}
			nd := it.dist + linkWeight(ix, li, m)
			cur := s.dist[o]
			seen := !math.IsInf(cur, 1)
			better := !seen || nd < cur
			// Deterministic tie-break on equal distance: prefer the
			// lower-indexed (= lexicographically smaller) predecessor link.
			if seen && nd == cur && li < s.prevLink[o] {
				better = true
			}
			if better {
				s.dist[o] = nd
				s.prevLink[o] = li
				s.prevNode[o] = it.node
				s.heap = heapPush(s.heap, heapItem{dist: nd, node: o})
			}
		}
	}
	return s.visited[dst]
}

// extractPath walks the predecessor arrays back from dst and returns the
// src->dst node and link index sequences. The returned slices alias the
// scratch buffers: copy before the next search if they must persist.
func (s *scratch) extractPath(src, dst int32) (nodes, links []int32) {
	s.nodeBuf = s.nodeBuf[:0]
	s.linkBuf = s.linkBuf[:0]
	for n := dst; ; {
		s.nodeBuf = append(s.nodeBuf, n)
		if n == src {
			break
		}
		s.linkBuf = append(s.linkBuf, s.prevLink[n])
		n = s.prevNode[n]
	}
	// Reverse into src->dst order.
	for i, j := 0, len(s.nodeBuf)-1; i < j; i, j = i+1, j-1 {
		s.nodeBuf[i], s.nodeBuf[j] = s.nodeBuf[j], s.nodeBuf[i]
	}
	for i, j := 0, len(s.linkBuf)-1; i < j; i, j = i+1, j-1 {
		s.linkBuf[i], s.linkBuf[j] = s.linkBuf[j], s.linkBuf[i]
	}
	return s.nodeBuf, s.linkBuf
}

// applyConstraints marks the caller-supplied avoid sets in the arena.
// Unknown IDs are ignored, matching the map implementation (an avoided link
// that does not exist cannot be traversed anyway).
func (s *scratch) applyConstraints(ix *topo.Index, c Constraints) {
	for id, v := range c.AvoidLinks {
		if !v {
			continue
		}
		if li, ok := ix.LinkIndex(id); ok {
			s.avoidLink[li] = true
		}
	}
	for id, v := range c.AvoidNodes {
		if !v {
			continue
		}
		if ni, ok := ix.NodeIndex(id); ok {
			s.avoidNode[ni] = true
		}
	}
}

// pathWeightIdx sums link weights in path order — the same sequential
// accumulation PathWeight performs, so cached weights compare bit-identically
// to recomputed ones.
func pathWeightIdx(ix *topo.Index, links []int32, m Metric) float64 {
	var w float64
	for _, li := range links {
		w += linkWeight(ix, li, m)
	}
	return w
}
