// Package rwa implements routing and wavelength assignment for the DWDM
// layer: shortest and k-shortest path search, link-disjoint path pairs (for
// 1+1 protection and bridge-and-roll), and wavelength-assignment policies
// honouring the wavelength-continuity constraint between regeneration points.
package rwa

import (
	"container/heap"
	"errors"
	"fmt"

	"griphon/internal/topo"
)

// Metric selects the edge weight used by path search.
type Metric int

const (
	// ByHops minimizes the number of fiber links (what the prototype's
	// Table 2 varies).
	ByHops Metric = iota
	// ByKM minimizes total span length and therefore latency.
	ByKM
)

func (m Metric) String() string {
	switch m {
	case ByHops:
		return "hops"
	case ByKM:
		return "km"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// ErrNoPath is returned when the destination is unreachable under the given
// constraints.
var ErrNoPath = errors.New("rwa: no path")

// Constraints restricts path search. The zero value imposes nothing.
type Constraints struct {
	// AvoidLinks are links the path must not traverse (failed fibers,
	// links of the path being protected, maintenance targets).
	AvoidLinks map[topo.LinkID]bool
	// AvoidNodes are nodes the path must not visit (the endpoints are
	// always allowed).
	AvoidNodes map[topo.NodeID]bool
}

func (c Constraints) linkOK(id topo.LinkID) bool { return !c.AvoidLinks[id] }
func (c Constraints) nodeOK(id topo.NodeID) bool { return !c.AvoidNodes[id] }

func weight(l *topo.Link, m Metric) float64 {
	if m == ByKM {
		return l.KM
	}
	return 1
}

type pqItem struct {
	node  topo.NodeID
	dist  float64
	index int
}

type nodePQ []*pqItem

func (q nodePQ) Len() int { return len(q) }
func (q nodePQ) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node // deterministic tie-break
}
func (q nodePQ) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *nodePQ) Push(x any) {
	it := x.(*pqItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *nodePQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum-weight path from src to dst under the
// metric and constraints. Ties break deterministically (lowest node/link ID).
func ShortestPath(g *topo.Graph, src, dst topo.NodeID, m Metric, c Constraints) (topo.Path, error) {
	if g.Node(src) == nil {
		return topo.Path{}, fmt.Errorf("rwa: unknown source %s", src)
	}
	if g.Node(dst) == nil {
		return topo.Path{}, fmt.Errorf("rwa: unknown destination %s", dst)
	}
	if src == dst {
		return topo.Path{}, fmt.Errorf("rwa: source equals destination %s", src)
	}

	dist := map[topo.NodeID]float64{src: 0}
	prevLink := map[topo.NodeID]topo.LinkID{}
	prevNode := map[topo.NodeID]topo.NodeID{}
	visited := map[topo.NodeID]bool{}

	pq := &nodePQ{}
	heap.Push(pq, &pqItem{node: src, dist: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*pqItem)
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		if it.node == dst {
			break
		}
		for _, l := range g.LinksAt(it.node) {
			if !c.linkOK(l.ID) {
				continue
			}
			o := l.Other(it.node)
			if visited[o] {
				continue
			}
			if o != dst && o != src && !c.nodeOK(o) {
				continue
			}
			nd := it.dist + weight(l, m)
			cur, seen := dist[o]
			better := !seen || nd < cur
			// Deterministic tie-break on equal distance: prefer the
			// lexicographically smaller predecessor link.
			if seen && nd == cur && l.ID < prevLink[o] {
				better = true
			}
			if better {
				dist[o] = nd
				prevLink[o] = l.ID
				prevNode[o] = it.node
				heap.Push(pq, &pqItem{node: o, dist: nd})
			}
		}
	}
	if !visited[dst] {
		return topo.Path{}, ErrNoPath
	}

	// Walk predecessors back from dst.
	var nodes []topo.NodeID
	var links []topo.LinkID
	for n := dst; ; {
		nodes = append(nodes, n)
		if n == src {
			break
		}
		links = append(links, prevLink[n])
		n = prevNode[n]
	}
	// Reverse into src->dst order.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	p := topo.Path{Nodes: nodes, Links: links}
	if err := p.Validate(g); err != nil {
		return topo.Path{}, fmt.Errorf("rwa: internal path error: %w", err)
	}
	return p, nil
}

// PathWeight returns the path's total weight under the metric.
func PathWeight(g *topo.Graph, p topo.Path, m Metric) float64 {
	var w float64
	for _, id := range p.Links {
		if l := g.Link(id); l != nil {
			w += weight(l, m)
		}
	}
	return w
}

// PropagationDelay returns the one-way light propagation delay of the path,
// at ~4.9 microseconds per fiber kilometre.
func PropagationDelay(g *topo.Graph, p topo.Path) float64 {
	return p.KM(g) * 4.9e-6 // seconds
}
