// Package rwa implements routing and wavelength assignment for the DWDM
// layer: shortest and k-shortest path search, link-disjoint path pairs (for
// 1+1 protection and bridge-and-roll), and wavelength-assignment policies
// honouring the wavelength-continuity constraint between regeneration points.
//
// Path search runs on the compiled integer-indexed view of the topology
// (topo.Index) with pooled scratch arenas — see compiled.go — and converts
// back to topo.Path only at the API boundary.
package rwa

import (
	"errors"
	"fmt"

	"griphon/internal/topo"
)

// Metric selects the edge weight used by path search.
type Metric int

const (
	// ByHops minimizes the number of fiber links (what the prototype's
	// Table 2 varies).
	ByHops Metric = iota
	// ByKM minimizes total span length and therefore latency.
	ByKM
)

func (m Metric) String() string {
	switch m {
	case ByHops:
		return "hops"
	case ByKM:
		return "km"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// ErrNoPath is returned when the destination is unreachable under the given
// constraints.
var ErrNoPath = errors.New("rwa: no path")

// Constraints restricts path search. The zero value imposes nothing.
type Constraints struct {
	// AvoidLinks are links the path must not traverse (failed fibers,
	// links of the path being protected, maintenance targets).
	AvoidLinks map[topo.LinkID]bool
	// AvoidNodes are nodes the path must not visit (the endpoints are
	// always allowed).
	AvoidNodes map[topo.NodeID]bool
}

// ShortestPath returns the minimum-weight path from src to dst under the
// metric and constraints. Ties break deterministically (lowest node/link ID).
func ShortestPath(g *topo.Graph, src, dst topo.NodeID, m Metric, c Constraints) (topo.Path, error) {
	var p topo.Path
	if err := ShortestPathInto(g, src, dst, m, c, &p); err != nil {
		return topo.Path{}, err
	}
	return p, nil
}

// ShortestPathInto is ShortestPath writing its result into p, reusing p's
// backing arrays. With a recycled path this is the zero-allocation warm path
// of the compiled engine: the search itself runs on a pooled scratch arena
// and allocates nothing.
func ShortestPathInto(g *topo.Graph, src, dst topo.NodeID, m Metric, c Constraints, p *topo.Path) error {
	ix := g.Index()
	si, ok := ix.NodeIndex(src)
	if !ok {
		return fmt.Errorf("rwa: unknown source %s", src)
	}
	di, ok := ix.NodeIndex(dst)
	if !ok {
		return fmt.Errorf("rwa: unknown destination %s", dst)
	}
	if src == dst {
		return fmt.Errorf("rwa: source equals destination %s", src)
	}

	s := getScratch(ix.NumNodes(), ix.NumLinks())
	defer putScratch(s)
	s.applyConstraints(ix, c)

	if !dijkstra(ix, si, di, m, s) {
		return ErrNoPath
	}
	nodes, links := s.extractPath(si, di)
	p.Nodes = p.Nodes[:0]
	p.Links = p.Links[:0]
	for _, n := range nodes {
		p.Nodes = append(p.Nodes, ix.NodeIDAt(n))
	}
	for _, l := range links {
		p.Links = append(p.Links, ix.LinkIDAt(l))
	}
	return nil
}

// PathWeight returns the path's total weight under the metric.
func PathWeight(g *topo.Graph, p topo.Path, m Metric) float64 {
	var w float64
	for _, id := range p.Links {
		if l := g.Link(id); l != nil {
			if m == ByKM {
				w += l.KM
			} else {
				w++
			}
		}
	}
	return w
}

// PropagationDelay returns the one-way light propagation delay of the path,
// at ~4.9 microseconds per fiber kilometre.
func PropagationDelay(g *topo.Graph, p topo.Path) float64 {
	return p.KM(g) * 4.9e-6 // seconds
}
