package rwa

// Equivalence and determinism coverage for the compiled integer-indexed
// engine. The ref* functions below are verbatim copies of the seed's
// string-keyed, map-based implementations; the tests assert that the compiled
// engine returns exactly the paths, orderings and channel selections the seed
// returned, over seeded random topologies and random constraint sets. The
// golden fixtures in testdata/ pin that behaviour across future refactors
// (regenerate with -update, which runs the reference implementation).

import (
	"container/heap"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"griphon/internal/optics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

var update = flag.Bool("update", false, "regenerate golden fixtures from the reference implementation")

// ---- reference implementation (seed copy) ----

func refWeight(l *topo.Link, m Metric) float64 {
	if m == ByKM {
		return l.KM
	}
	return 1
}

type refPQItem struct {
	node  topo.NodeID
	dist  float64
	index int
}

type refNodePQ []*refPQItem

func (q refNodePQ) Len() int { return len(q) }
func (q refNodePQ) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].node < q[j].node
}
func (q refNodePQ) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refNodePQ) Push(x any) {
	it := x.(*refPQItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *refNodePQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

func refShortestPath(g *topo.Graph, src, dst topo.NodeID, m Metric, c Constraints) (topo.Path, error) {
	if g.Node(src) == nil {
		return topo.Path{}, fmt.Errorf("rwa: unknown source %s", src)
	}
	if g.Node(dst) == nil {
		return topo.Path{}, fmt.Errorf("rwa: unknown destination %s", dst)
	}
	if src == dst {
		return topo.Path{}, fmt.Errorf("rwa: source equals destination %s", src)
	}

	dist := map[topo.NodeID]float64{src: 0}
	prevLink := map[topo.NodeID]topo.LinkID{}
	prevNode := map[topo.NodeID]topo.NodeID{}
	visited := map[topo.NodeID]bool{}

	pq := &refNodePQ{}
	heap.Push(pq, &refPQItem{node: src, dist: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*refPQItem)
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		if it.node == dst {
			break
		}
		for _, l := range g.LinksAt(it.node) {
			if c.AvoidLinks[l.ID] {
				continue
			}
			o := l.Other(it.node)
			if visited[o] {
				continue
			}
			if o != dst && o != src && c.AvoidNodes[o] {
				continue
			}
			nd := it.dist + refWeight(l, m)
			cur, seen := dist[o]
			better := !seen || nd < cur
			if seen && nd == cur && l.ID < prevLink[o] {
				better = true
			}
			if better {
				dist[o] = nd
				prevLink[o] = l.ID
				prevNode[o] = it.node
				heap.Push(pq, &refPQItem{node: o, dist: nd})
			}
		}
	}
	if !visited[dst] {
		return topo.Path{}, ErrNoPath
	}

	var nodes []topo.NodeID
	var links []topo.LinkID
	for n := dst; ; {
		nodes = append(nodes, n)
		if n == src {
			break
		}
		links = append(links, prevLink[n])
		n = prevNode[n]
	}
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return topo.Path{Nodes: nodes, Links: links}, nil
}

func refSharesRoot(p topo.Path, rootNodes []topo.NodeID, rootLinks []topo.LinkID) bool {
	if len(p.Nodes) < len(rootNodes) || len(p.Links) < len(rootLinks) {
		return false
	}
	for i, n := range rootNodes {
		if p.Nodes[i] != n {
			return false
		}
	}
	for i, l := range rootLinks {
		if p.Links[i] != l {
			return false
		}
	}
	return true
}

func refContainsPath(ps []topo.Path, q topo.Path) bool {
	for _, p := range ps {
		if p.Equal(q) {
			return true
		}
	}
	return false
}

func refKShortest(g *topo.Graph, src, dst topo.NodeID, k int, m Metric, c Constraints) ([]topo.Path, error) {
	if k <= 0 {
		k = 1
	}
	first, err := refShortestPath(g, src, dst, m, c)
	if err != nil {
		return nil, err
	}
	paths := []topo.Path{first}
	var candidates []topo.Path

	for len(paths) < k {
		prev := paths[len(paths)-1]
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootLinks := prev.Links[:i]

			avoidLinks := map[topo.LinkID]bool{}
			for id := range c.AvoidLinks {
				avoidLinks[id] = true
			}
			for _, p := range paths {
				if refSharesRoot(p, rootNodes, rootLinks) && i < len(p.Links) {
					avoidLinks[p.Links[i]] = true
				}
			}
			for _, cand := range candidates {
				if refSharesRoot(cand, rootNodes, rootLinks) && i < len(cand.Links) {
					avoidLinks[cand.Links[i]] = true
				}
			}
			avoidNodes := map[topo.NodeID]bool{}
			for id := range c.AvoidNodes {
				avoidNodes[id] = true
			}
			for _, n := range rootNodes[:i] {
				avoidNodes[n] = true
			}

			spur, err := refShortestPath(g, spurNode, dst, m, Constraints{
				AvoidLinks: avoidLinks,
				AvoidNodes: avoidNodes,
			})
			if err != nil {
				continue
			}
			total := topo.Path{
				Nodes: append(append([]topo.NodeID(nil), rootNodes...), spur.Nodes[1:]...),
				Links: append(append([]topo.LinkID(nil), rootLinks...), spur.Links...),
			}
			if total.Validate(g) != nil {
				continue
			}
			if refContainsPath(paths, total) || refContainsPath(candidates, total) {
				continue
			}
			candidates = append(candidates, total)
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			wa, wb := PathWeight(g, candidates[a], m), PathWeight(g, candidates[b], m)
			if wa != wb {
				return wa < wb
			}
			return candidates[a].String() < candidates[b].String()
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

func refDisjointPair(g *topo.Graph, src, dst topo.NodeID, kPrimaries int, m Metric, c Constraints) (primary, backup topo.Path, err error) {
	if kPrimaries <= 0 {
		kPrimaries = 4
	}
	prims, err := refKShortest(g, src, dst, kPrimaries, m, c)
	if err != nil {
		return topo.Path{}, topo.Path{}, err
	}
	best := -1.0
	for _, p := range prims {
		avoid := map[topo.LinkID]bool{}
		for id := range c.AvoidLinks {
			avoid[id] = true
		}
		for _, l := range p.Links {
			avoid[l] = true
		}
		b, err := refShortestPath(g, src, dst, m, Constraints{AvoidLinks: avoid, AvoidNodes: c.AvoidNodes})
		if err != nil {
			continue
		}
		total := PathWeight(g, p, m) + PathWeight(g, b, m)
		if best < 0 || total < best {
			best = total
			primary, backup = p, b
		}
	}
	if best < 0 {
		return topo.Path{}, topo.Path{}, ErrNoPath
	}
	return primary, backup, nil
}

func refChannelUsage(plant *optics.Plant) map[optics.Channel]int {
	usage := make(map[optics.Channel]int)
	for _, l := range plant.Graph().Links() {
		for _, ch := range plant.Spectrum(l.ID).UsedChannels() {
			usage[ch]++
		}
	}
	return usage
}

func refAssignWavelength(plant *optics.Plant, links []topo.LinkID, policy AssignPolicy, rng *sim.Rand) (optics.Channel, error) {
	if len(links) == 0 {
		return 0, fmt.Errorf("rwa: no links to assign a wavelength on")
	}
	free := plant.ContinuityChannels(links)
	if len(free) == 0 {
		return 0, fmt.Errorf("rwa: no common free wavelength on %v", links)
	}
	switch policy {
	case FirstFit:
		return free[0], nil
	case RandomFit:
		if rng == nil {
			return 0, fmt.Errorf("rwa: RandomFit needs a random source")
		}
		return free[rng.Intn(len(free))], nil
	case MostUsed, LeastUsed:
		usage := refChannelUsage(plant)
		best := free[0]
		bestU := usage[best]
		for _, ch := range free[1:] {
			u := usage[ch]
			if (policy == MostUsed && u > bestU) || (policy == LeastUsed && u < bestU) {
				best, bestU = ch, u
			}
		}
		return best, nil
	default:
		return 0, fmt.Errorf("rwa: unknown policy %v", policy)
	}
}

// ---- equivalence over seeded random topologies ----

type eqTopo struct {
	name string
	g    *topo.Graph
}

func equivalenceTopologies(t testing.TB) []eqTopo {
	t.Helper()
	out := []eqTopo{
		{"testbed", topo.Testbed()},
		{"backbone", topo.Backbone()},
	}
	ring, err := topo.Ring(12, 250)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, eqTopo{"ring12", ring})
	grid, err := topo.Grid(6, 6, 300)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, eqTopo{"grid36", grid})
	for _, seed := range []int64{1, 2, 3} {
		g, err := topo.Continental(40, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, eqTopo{fmt.Sprintf("continental40-s%d", seed), g})
	}
	return out
}

// randConstraints builds a random avoid set that still leaves src/dst alone.
func randConstraints(rng *sim.Rand, g *topo.Graph, src, dst topo.NodeID) Constraints {
	var c Constraints
	if rng.Intn(2) == 0 {
		return c
	}
	c.AvoidLinks = map[topo.LinkID]bool{}
	for _, l := range g.Links() {
		if rng.Intn(10) == 0 {
			c.AvoidLinks[l.ID] = true
		}
	}
	c.AvoidNodes = map[topo.NodeID]bool{}
	for _, n := range g.Nodes() {
		if n.ID != src && n.ID != dst && rng.Intn(12) == 0 {
			c.AvoidNodes[n.ID] = true
		}
	}
	return c
}

func samePathErr(t *testing.T, what string, got topo.Path, gotErr error, want topo.Path, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: err = %v, reference err = %v", what, gotErr, wantErr)
	}
	if wantErr != nil {
		if errors.Is(wantErr, ErrNoPath) != errors.Is(gotErr, ErrNoPath) {
			t.Fatalf("%s: err = %v, reference err = %v", what, gotErr, wantErr)
		}
		return
	}
	if !got.Equal(want) {
		t.Fatalf("%s: path = %s, reference = %s", what, got, want)
	}
}

func TestCompiledEngineEquivalence(t *testing.T) {
	for _, tc := range equivalenceTopologies(t) {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			nodes := g.Nodes()
			rng := sim.NewRand(42)
			for trial := 0; trial < 60; trial++ {
				src := nodes[rng.Intn(len(nodes))].ID
				dst := nodes[rng.Intn(len(nodes))].ID
				if src == dst {
					continue
				}
				m := Metric(rng.Intn(2))
				c := randConstraints(rng, g, src, dst)

				gp, gerr := ShortestPath(g, src, dst, m, c)
				rp, rerr := refShortestPath(g, src, dst, m, c)
				samePathErr(t, fmt.Sprintf("ShortestPath %s->%s %v", src, dst, m), gp, gerr, rp, rerr)

				k := 1 + rng.Intn(8)
				gks, gerr := KShortest(g, src, dst, k, m, c)
				rks, rerr := refKShortest(g, src, dst, k, m, c)
				if (gerr == nil) != (rerr == nil) {
					t.Fatalf("KShortest %s->%s k=%d: err %v vs ref %v", src, dst, k, gerr, rerr)
				}
				if gerr == nil {
					if len(gks) != len(rks) {
						t.Fatalf("KShortest %s->%s k=%d: %d paths vs ref %d", src, dst, k, len(gks), len(rks))
					}
					for i := range gks {
						if !gks[i].Equal(rks[i]) {
							t.Fatalf("KShortest %s->%s k=%d path[%d]: %s vs ref %s", src, dst, k, i, gks[i], rks[i])
						}
					}
				}

				gp1, gb1, gerr := DisjointPair(g, src, dst, 4, m, c)
				rp1, rb1, rerr := refDisjointPair(g, src, dst, 4, m, c)
				samePathErr(t, fmt.Sprintf("DisjointPair-primary %s->%s", src, dst), gp1, gerr, rp1, rerr)
				if gerr == nil {
					samePathErr(t, fmt.Sprintf("DisjointPair-backup %s->%s", src, dst), gb1, gerr, rb1, rerr)
				}
			}
		})
	}
}

// TestAssignEquivalence drives the bitset spectra + incremental usage
// counters against the seed's map-scanning policies over a random
// reserve/release workload.
func TestAssignEquivalence(t *testing.T) {
	g := topo.Backbone()
	plant, err := optics.NewPlant(g, optics.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	links := g.Links()
	rng := sim.NewRand(7)
	var held []struct {
		link topo.LinkID
		ch   optics.Channel
	}
	for step := 0; step < 400; step++ {
		// Random churn on the spectra.
		l := links[rng.Intn(len(links))].ID
		ch := optics.Channel(1 + rng.Intn(plant.Config().Channels))
		if plant.Spectrum(l).IsFree(ch) {
			if err := plant.Spectrum(l).Reserve(ch, "eq"); err != nil {
				t.Fatal(err)
			}
			held = append(held, struct {
				link topo.LinkID
				ch   optics.Channel
			}{l, ch})
		} else if len(held) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(held))
			if plant.Spectrum(held[i].link).Owner(held[i].ch) == "eq" {
				if err := plant.Spectrum(held[i].link).Release(held[i].ch); err != nil {
					t.Fatal(err)
				}
				held = append(held[:i], held[i+1:]...)
			}
		}
		// Usage counters must equal a full rescan at every step.
		usage := refChannelUsage(plant)
		for ch := 1; ch <= plant.Config().Channels; ch++ {
			if got, want := plant.ChannelUsage(optics.Channel(ch)), usage[optics.Channel(ch)]; got != want {
				t.Fatalf("step %d: usage[%d] = %d, rescan = %d", step, ch, got, want)
			}
		}
		if step%20 != 0 {
			continue
		}
		// Policy selections must match the reference on a random segment.
		src := links[rng.Intn(len(links))].A
		dst := links[rng.Intn(len(links))].B
		if src == dst {
			continue
		}
		p, err := ShortestPath(g, src, dst, ByHops, Constraints{})
		if err != nil {
			continue
		}
		for _, pol := range []AssignPolicy{FirstFit, MostUsed, LeastUsed} {
			got, gerr := AssignWavelength(plant, p.Links, pol, nil)
			want, werr := refAssignWavelength(plant, p.Links, pol, nil)
			if (gerr == nil) != (werr == nil) || got != want {
				t.Fatalf("step %d: %v on %v = (%d, %v), reference (%d, %v)", step, pol, p.Links, got, gerr, want, werr)
			}
		}
		r1, r2 := sim.NewRand(int64(step)), sim.NewRand(int64(step))
		got, gerr := AssignWavelength(plant, p.Links, RandomFit, r1)
		want, werr := refAssignWavelength(plant, p.Links, RandomFit, r2)
		if (gerr == nil) != (werr == nil) || got != want {
			t.Fatalf("step %d: random-fit = (%d, %v), reference (%d, %v)", step, got, gerr, want, werr)
		}
		// And the continuity list itself must be identical.
		gotFree := plant.ContinuityChannels(p.Links)
		spectra := make([]*optics.Spectrum, len(p.Links))
		for i, id := range p.Links {
			spectra[i] = plant.Spectrum(id)
		}
		wantFree := optics.IntersectFree(spectra)
		if len(gotFree) != len(wantFree) {
			t.Fatalf("step %d: continuity %v vs %v", step, gotFree, wantFree)
		}
		for i := range gotFree {
			if gotFree[i] != wantFree[i] {
				t.Fatalf("step %d: continuity %v vs %v", step, gotFree, wantFree)
			}
		}
	}
}

// ---- golden fixtures ----

type goldenCase struct {
	Topo   string   `json:"topo"`
	Src    string   `json:"src"`
	Dst    string   `json:"dst"`
	Metric string   `json:"metric"`
	K      int      `json:"k"`
	Paths  []string `json:"paths"`             // KShortest result, in order
	Prim   string   `json:"primary,omitempty"` // DisjointPair
	Back   string   `json:"backup,omitempty"`
}

func goldenTopo(t *testing.T, name string) *topo.Graph {
	t.Helper()
	for _, tc := range equivalenceTopologies(t) {
		if tc.name == name {
			return tc.g
		}
	}
	t.Fatalf("unknown golden topology %s", name)
	return nil
}

func goldenMetric(t *testing.T, s string) Metric {
	t.Helper()
	switch s {
	case "hops":
		return ByHops
	case "km":
		return ByKM
	}
	t.Fatalf("unknown metric %q", s)
	return ByHops
}

func TestGoldenRoutes(t *testing.T) {
	path := filepath.Join("testdata", "golden_routes.json")
	if *update {
		var cases []goldenCase
		for _, tc := range equivalenceTopologies(t) {
			nodes := tc.g.Nodes()
			rng := sim.NewRand(99)
			for trial := 0; trial < 8; trial++ {
				src := nodes[rng.Intn(len(nodes))].ID
				dst := nodes[rng.Intn(len(nodes))].ID
				if src == dst {
					continue
				}
				for _, m := range []Metric{ByHops, ByKM} {
					k := 2 + rng.Intn(5)
					gc := goldenCase{
						Topo: tc.name, Src: string(src), Dst: string(dst),
						Metric: m.String(), K: k,
					}
					paths, err := refKShortest(tc.g, src, dst, k, m, Constraints{})
					if err != nil {
						continue
					}
					for _, p := range paths {
						gc.Paths = append(gc.Paths, p.String())
					}
					if p, b, err := refDisjointPair(tc.g, src, dst, 4, m, Constraints{}); err == nil {
						gc.Prim, gc.Back = p.String(), b.String()
					}
					cases = append(cases, gc)
				}
			}
		}
		buf, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cases to %s", len(cases), path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixtures (run go test -run TestGoldenRoutes -update): %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(buf, &cases); err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*topo.Graph{}
	for _, gc := range cases {
		g, ok := graphs[gc.Topo]
		if !ok {
			g = goldenTopo(t, gc.Topo)
			graphs[gc.Topo] = g
		}
		m := goldenMetric(t, gc.Metric)
		paths, err := KShortest(g, topo.NodeID(gc.Src), topo.NodeID(gc.Dst), gc.K, m, Constraints{})
		if err != nil {
			t.Fatalf("%s %s->%s: %v", gc.Topo, gc.Src, gc.Dst, err)
		}
		if len(paths) != len(gc.Paths) {
			t.Fatalf("%s %s->%s k=%d: %d paths, golden %d", gc.Topo, gc.Src, gc.Dst, gc.K, len(paths), len(gc.Paths))
		}
		for i, p := range paths {
			if p.String() != gc.Paths[i] {
				t.Errorf("%s %s->%s k=%d path[%d] = %s, golden %s", gc.Topo, gc.Src, gc.Dst, gc.K, i, p, gc.Paths[i])
			}
		}
		if gc.Prim != "" {
			p, b, err := DisjointPair(g, topo.NodeID(gc.Src), topo.NodeID(gc.Dst), 4, m, Constraints{})
			if err != nil {
				t.Fatalf("%s disjoint %s->%s: %v", gc.Topo, gc.Src, gc.Dst, err)
			}
			if p.String() != gc.Prim || b.String() != gc.Back {
				t.Errorf("%s disjoint %s->%s = (%s, %s), golden (%s, %s)", gc.Topo, gc.Src, gc.Dst, p, b, gc.Prim, gc.Back)
			}
		}
	}
}

// ---- pooled scratch arena race coverage ----

// TestScratchPoolRace hammers the pooled arenas (and the lazy Index build)
// from many goroutines; run under -race this proves searches share nothing.
func TestScratchPoolRace(t *testing.T) {
	g, err := topo.Grid(6, 6, 300)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ShortestPath(g, "G0000", "G0505", ByKM, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh graph so the concurrent searches also race on the first
	// Index() build.
	g2, err := topo.Grid(6, 6, 300)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var p topo.Path
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					if err := ShortestPathInto(g2, "G0000", "G0505", ByKM, Constraints{}, &p); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					if !p.Equal(want) {
						t.Errorf("worker %d: path %s, want %s", w, p, want)
						return
					}
				case 1:
					if _, err := KShortest(g2, "G0000", "G0505", 4, ByHops, Constraints{}); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				case 2:
					if _, _, err := DisjointPair(g2, "G0000", "G0505", 3, ByHops, Constraints{}); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestIndexInvalidation checks that topology mutation rebuilds the compiled
// view: a shortcut link added after the first search must be picked up.
func TestIndexInvalidation(t *testing.T) {
	g := topo.New()
	for _, n := range []topo.NodeID{"A", "B", "C"} {
		if err := g.AddNode(topo.Node{ID: n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddLink(topo.Link{ID: "A-B", A: "A", B: "B", KM: 10}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(topo.Link{ID: "B-C", A: "B", B: "C", KM: 10}); err != nil {
		t.Fatal(err)
	}
	p, err := ShortestPath(g, "A", "C", ByHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 2 {
		t.Fatalf("before shortcut: %s", p)
	}
	if err := g.AddLink(topo.Link{ID: "A-C", A: "A", B: "C", KM: 10}); err != nil {
		t.Fatal(err)
	}
	p, err = ShortestPath(g, "A", "C", ByHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 1 || p.String() != "A-C" {
		t.Fatalf("after shortcut: %s", p)
	}
}
