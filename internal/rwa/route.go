package rwa

import (
	"fmt"

	"griphon/internal/bw"
	"griphon/internal/optics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Route is a fully resolved lightpath: the fiber path, its split into
// transparent segments (with regeneration nodes), and the wavelength chosen
// for each segment.
type Route struct {
	Path topo.Path
	Plan optics.RegenPlan
	// Channels holds one wavelength per segment of Plan, in order.
	Channels []optics.Channel
}

// Options tunes FindRoute. The zero value means: 4 candidate paths, hop
// metric, first-fit assignment, no extra constraints.
type Options struct {
	K      int
	Metric Metric
	Policy AssignPolicy
	// Constraints restricts the fiber path; failed links are always
	// avoided regardless.
	Constraints Constraints
	// Rand is required when Policy is RandomFit.
	Rand *sim.Rand
	// Rate selects the line rate whose optical reach governs regeneration
	// planning (zero uses the plant's default reach).
	Rate bw.Rate
}

// FindRoute computes a lightpath from src to dst through the photonic plant:
// it searches the K shortest fiber paths (skipping failed links), splits each
// by optical reach, and tries to assign a wavelength to every transparent
// segment. The first path that fully assigns wins — so a shorter path that is
// wavelength-blocked is passed over for a longer one that is not, which is
// exactly the behaviour a carrier's RWA exhibits under load.
func FindRoute(plant *optics.Plant, src, dst topo.NodeID, opt Options) (Route, error) {
	g := plant.Graph()
	k := opt.K
	if k <= 0 {
		k = 4
	}

	// Merge failed links into the avoid set. With no failures the caller's
	// constraints pass through untouched (KShortest never mutates them).
	cons := opt.Constraints
	if down := plant.DownLinks(); len(down) > 0 {
		avoid := make(map[topo.LinkID]bool, len(opt.Constraints.AvoidLinks)+len(down))
		for id := range opt.Constraints.AvoidLinks {
			avoid[id] = true
		}
		for _, id := range down {
			avoid[id] = true
		}
		cons = Constraints{AvoidLinks: avoid, AvoidNodes: opt.Constraints.AvoidNodes}
	}

	paths, err := KShortest(g, src, dst, k, opt.Metric, cons)
	if err != nil {
		return Route{}, err
	}

	var lastErr error
	reach := plant.ReachFor(opt.Rate)
	for _, p := range paths {
		plan, err := optics.PlanRegens(g, p, reach)
		if err != nil {
			lastErr = err
			continue
		}
		channels := make([]optics.Channel, 0, len(plan.Segments))
		ok := true
		for _, seg := range plan.Segments {
			ch, err := AssignWavelength(plant, seg.Links, opt.Policy, opt.Rand)
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			channels = append(channels, ch)
		}
		if ok {
			return Route{Path: p, Plan: plan, Channels: channels}, nil
		}
	}
	if lastErr == nil {
		lastErr = ErrNoPath
	}
	return Route{}, fmt.Errorf("rwa: no assignable route %s->%s: %w", src, dst, lastErr)
}
