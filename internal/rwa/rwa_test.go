package rwa

import (
	"errors"
	"testing"
	"testing/quick"

	"griphon/internal/optics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func TestShortestPathByHops(t *testing.T) {
	g := topo.Testbed()
	p, err := ShortestPath(g, "I", "IV", ByHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "I-IV" {
		t.Errorf("path = %s, want I-IV", p)
	}
}

func TestShortestPathByKM(t *testing.T) {
	g := topo.Backbone()
	p, err := ShortestPath(g, "SEA", "NYC", ByKM, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// SEA-CHI-ANN-NYC = 2800+380+1000 = 4180 is the km-shortest.
	if p.String() != "SEA-CHI-ANN-NYC" {
		t.Errorf("path = %s", p)
	}
	if w := PathWeight(g, p, ByKM); w != 4180 {
		t.Errorf("weight = %v", w)
	}
}

func TestShortestPathAvoidsLinksAndNodes(t *testing.T) {
	g := topo.Testbed()
	p, err := ShortestPath(g, "I", "IV", ByHops, Constraints{
		AvoidLinks: map[topo.LinkID]bool{"I-IV": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "I-III-IV" {
		t.Errorf("path = %s, want I-III-IV", p)
	}
	p, err = ShortestPath(g, "I", "IV", ByHops, Constraints{
		AvoidLinks: map[topo.LinkID]bool{"I-IV": true},
		AvoidNodes: map[topo.NodeID]bool{"III": true},
	})
	if err == nil {
		t.Errorf("avoiding I-IV and III should leave no path, got %s", p)
	}
	if !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathValidation(t *testing.T) {
	g := topo.Testbed()
	if _, err := ShortestPath(g, "Z", "IV", ByHops, Constraints{}); err == nil {
		t.Error("unknown src accepted")
	}
	if _, err := ShortestPath(g, "I", "Z", ByHops, Constraints{}); err == nil {
		t.Error("unknown dst accepted")
	}
	if _, err := ShortestPath(g, "I", "I", ByHops, Constraints{}); err == nil {
		t.Error("src==dst accepted")
	}
}

func TestShortestPathDeterministic(t *testing.T) {
	g := topo.Backbone()
	first, err := ShortestPath(g, "SEA", "ATL", ByHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p, err := ShortestPath(g, "SEA", "ATL", ByHops, Constraints{})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(first) {
			t.Fatalf("run %d diverged: %s vs %s", i, p, first)
		}
	}
}

func TestKShortestTestbedPaths(t *testing.T) {
	g := topo.Testbed()
	paths, err := KShortest(g, "I", "IV", 3, ByHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	// The three Table 2 paths, in hop order.
	want := []string{"I-IV", "I-III-IV", "I-II-III-IV"}
	for i, w := range want {
		if paths[i].String() != w {
			t.Errorf("path[%d] = %s, want %s", i, paths[i], w)
		}
	}
}

func TestKShortestOrderingAndUniqueness(t *testing.T) {
	g := topo.Backbone()
	paths, err := KShortest(g, "SEA", "ATL", 8, ByKM, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("only %d paths", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if PathWeight(g, paths[i-1], ByKM) > PathWeight(g, paths[i], ByKM) {
			t.Errorf("paths out of order at %d", i)
		}
		for j := 0; j < i; j++ {
			if paths[i].Equal(paths[j]) {
				t.Errorf("duplicate path %s", paths[i])
			}
		}
	}
	for _, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Errorf("invalid path %s: %v", p, err)
		}
	}
}

func TestKShortestRespectsConstraints(t *testing.T) {
	g := topo.Testbed()
	paths, err := KShortest(g, "I", "IV", 5, ByHops, Constraints{
		AvoidLinks: map[topo.LinkID]bool{"I-IV": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if p.HasLink("I-IV") {
			t.Errorf("path %s uses avoided link", p)
		}
	}
}

func TestKShortestExhaustsGracefully(t *testing.T) {
	g := topo.Testbed()
	paths, err := KShortest(g, "I", "IV", 100, ByHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	// The testbed only has 3 loop-free I->IV paths.
	if len(paths) != 3 {
		t.Errorf("got %d paths, want 3", len(paths))
	}
}

func TestDisjointPair(t *testing.T) {
	g := topo.Testbed()
	p, b, err := DisjointPair(g, "I", "IV", 4, ByHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.LinkDisjoint(b) {
		t.Fatalf("pair not disjoint: %s / %s", p, b)
	}
	if p.String() != "I-IV" {
		t.Errorf("primary = %s, want I-IV", p)
	}
	if b.String() != "I-III-IV" {
		t.Errorf("backup = %s, want I-III-IV", b)
	}
}

func TestDisjointPairImpossible(t *testing.T) {
	// A line graph has no disjoint pair.
	g := topo.New()
	for _, n := range []topo.NodeID{"A", "B", "C"} {
		g.AddNode(topo.Node{ID: n})
	}
	g.AddLink(topo.Link{ID: "A-B", A: "A", B: "B", KM: 10})
	g.AddLink(topo.Link{ID: "B-C", A: "B", B: "C", KM: 10})
	if _, _, err := DisjointPair(g, "A", "C", 4, ByHops, Constraints{}); err == nil {
		t.Error("disjoint pair found on a line graph")
	}
}

func TestDisjointPairOnRing(t *testing.T) {
	g, _ := topo.Ring(8, 100)
	p, b, err := DisjointPair(g, "R00", "R04", 4, ByHops, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.LinkDisjoint(b) {
		t.Fatal("ring pair not disjoint")
	}
	if p.Hops()+b.Hops() != 8 {
		t.Errorf("ring pair hops = %d+%d, want 8 total", p.Hops(), b.Hops())
	}
}

func newPlant(t *testing.T, g *topo.Graph) *optics.Plant {
	t.Helper()
	p, err := optics.NewPlant(g, optics.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssignWavelengthPolicies(t *testing.T) {
	g := topo.Testbed()
	plant := newPlant(t, g)
	links := []topo.LinkID{"I-III", "III-IV"}
	plant.Spectrum("I-III").Reserve(1, "x")

	ch, err := AssignWavelength(plant, links, FirstFit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch != 2 {
		t.Errorf("first-fit = %d, want 2", ch)
	}

	// Make channel 7 heavily used elsewhere; MostUsed should pick it.
	plant.Spectrum("I-II").Reserve(7, "y")
	plant.Spectrum("II-III").Reserve(7, "z")
	ch, err = AssignWavelength(plant, links, MostUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch != 7 {
		t.Errorf("most-used = %d, want 7", ch)
	}

	// LeastUsed avoids 7 (and 1 is used on I-III so not even free).
	ch, err = AssignWavelength(plant, links, LeastUsed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch == 7 {
		t.Error("least-used picked the busiest channel")
	}

	rng := sim.NewRand(3)
	ch, err = AssignWavelength(plant, links, RandomFit, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ch < 2 || int(ch) > 80 {
		t.Errorf("random = %d out of range", ch)
	}
	if _, err := AssignWavelength(plant, links, RandomFit, nil); err == nil {
		t.Error("RandomFit without rng accepted")
	}
	if _, err := AssignWavelength(plant, nil, FirstFit, nil); err == nil {
		t.Error("empty link list accepted")
	}
	if _, err := AssignWavelength(plant, links, AssignPolicy(99), nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestAssignWavelengthBlocked(t *testing.T) {
	g := topo.Testbed()
	cfg := optics.DefaultConfig()
	cfg.Channels = 2
	plant, err := optics.NewPlant(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plant.Spectrum("I-IV").Reserve(1, "a")
	plant.Spectrum("I-IV").Reserve(2, "b")
	if _, err := AssignWavelength(plant, []topo.LinkID{"I-IV"}, FirstFit, nil); err == nil {
		t.Error("assignment on a full link succeeded")
	}
}

func TestFindRouteSimple(t *testing.T) {
	g := topo.Testbed()
	plant := newPlant(t, g)
	r, err := FindRoute(plant, "I", "IV", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Path.String() != "I-IV" {
		t.Errorf("path = %s", r.Path)
	}
	if len(r.Channels) != 1 || r.Channels[0] != 1 {
		t.Errorf("channels = %v", r.Channels)
	}
	if r.Plan.NeedsRegen() {
		t.Error("testbed route should not need regen")
	}
}

func TestFindRouteAvoidsFailedLink(t *testing.T) {
	g := topo.Testbed()
	plant := newPlant(t, g)
	plant.SetLinkUp("I-IV", false)
	r, err := FindRoute(plant, "I", "IV", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Path.HasLink("I-IV") {
		t.Errorf("route %s uses failed link", r.Path)
	}
}

func TestFindRouteFallsBackWhenBlocked(t *testing.T) {
	g := topo.Testbed()
	cfg := optics.DefaultConfig()
	cfg.Channels = 1
	plant, err := optics.NewPlant(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Block the only channel on the direct link; route must detour.
	plant.Spectrum("I-IV").Reserve(1, "other")
	r, err := FindRoute(plant, "I", "IV", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Path.HasLink("I-IV") {
		t.Errorf("blocked link still used: %s", r.Path)
	}
}

func TestFindRouteWithRegens(t *testing.T) {
	g := topo.Backbone()
	cfg := optics.DefaultConfig()
	cfg.ReachKM = 3000
	plant, err := optics.NewPlant(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := FindRoute(plant, "SEA", "ATL", Options{Metric: ByKM})
	if err != nil {
		t.Fatal(err)
	}
	if r.Path.KM(g) > 3000 && !r.Plan.NeedsRegen() {
		t.Error("long path without regens")
	}
	if len(r.Channels) != len(r.Plan.Segments) {
		t.Errorf("channels/segments mismatch: %d/%d", len(r.Channels), len(r.Plan.Segments))
	}
}

func TestFindRouteNoPath(t *testing.T) {
	g := topo.Testbed()
	plant := newPlant(t, g)
	for _, l := range g.Links() {
		plant.SetLinkUp(l.ID, false)
	}
	if _, err := FindRoute(plant, "I", "IV", Options{}); err == nil {
		t.Error("route found on fully failed network")
	}
}

// Property: on the backbone, FindRoute between random site pairs always
// returns a valid path whose segments all have an assignable channel
// reserved-state untouched (FindRoute must not mutate the plant).
func TestFindRoutePureProperty(t *testing.T) {
	g := topo.Backbone()
	plant := newPlant(t, g)
	nodes := g.Nodes()
	prop := func(a, b uint8) bool {
		src := nodes[int(a)%len(nodes)].ID
		dst := nodes[int(b)%len(nodes)].ID
		if src == dst {
			return true
		}
		before := 0
		for _, l := range g.Links() {
			before += plant.Spectrum(l.ID).Used()
		}
		r, err := FindRoute(plant, src, dst, Options{})
		if err != nil {
			return false
		}
		after := 0
		for _, l := range g.Links() {
			after += plant.Spectrum(l.ID).Used()
		}
		return r.Path.Validate(g) == nil && before == after
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMetricAndPolicyStrings(t *testing.T) {
	if ByHops.String() != "hops" || ByKM.String() != "km" {
		t.Error("metric strings")
	}
	if Metric(9).String() == "" {
		t.Error("unknown metric string empty")
	}
	for p, want := range map[AssignPolicy]string{
		FirstFit: "first-fit", MostUsed: "most-used", LeastUsed: "least-used", RandomFit: "random",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	g := topo.Testbed()
	p, _ := topo.PathVia(g, "I", "IV")
	d := PropagationDelay(g, p)
	want := 320 * 4.9e-6
	if d < want*0.99 || d > want*1.01 {
		t.Errorf("delay = %v, want ~%v", d, want)
	}
}
