package rwa

import (
	"sort"

	"griphon/internal/topo"
)

// KShortest returns up to k loop-free paths from src to dst in non-decreasing
// weight order (Yen's algorithm). It returns ErrNoPath if not even one path
// exists.
func KShortest(g *topo.Graph, src, dst topo.NodeID, k int, m Metric, c Constraints) ([]topo.Path, error) {
	if k <= 0 {
		k = 1
	}
	first, err := ShortestPath(g, src, dst, m, c)
	if err != nil {
		return nil, err
	}
	paths := []topo.Path{first}
	var candidates []topo.Path

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// For each node of the previous path except the last, branch.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootLinks := prev.Links[:i]

			avoidLinks := map[topo.LinkID]bool{}
			for id := range c.AvoidLinks {
				avoidLinks[id] = true
			}
			// Remove the links that previous accepted paths take out
			// of this same root, so the spur diverges.
			for _, p := range paths {
				if sharesRoot(p, rootNodes, rootLinks) && i < len(p.Links) {
					avoidLinks[p.Links[i]] = true
				}
			}
			for _, cand := range candidates {
				if sharesRoot(cand, rootNodes, rootLinks) && i < len(cand.Links) {
					avoidLinks[cand.Links[i]] = true
				}
			}
			// Exclude root nodes (other than the spur node) so the
			// total path stays loop-free.
			avoidNodes := map[topo.NodeID]bool{}
			for id := range c.AvoidNodes {
				avoidNodes[id] = true
			}
			for _, n := range rootNodes[:i] {
				avoidNodes[n] = true
			}

			spur, err := ShortestPath(g, spurNode, dst, m, Constraints{
				AvoidLinks: avoidLinks,
				AvoidNodes: avoidNodes,
			})
			if err != nil {
				continue
			}
			total := topo.Path{
				Nodes: append(append([]topo.NodeID(nil), rootNodes...), spur.Nodes[1:]...),
				Links: append(append([]topo.LinkID(nil), rootLinks...), spur.Links...),
			}
			if total.Validate(g) != nil {
				continue
			}
			if containsPath(paths, total) || containsPath(candidates, total) {
				continue
			}
			candidates = append(candidates, total)
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			wa, wb := PathWeight(g, candidates[a], m), PathWeight(g, candidates[b], m)
			if wa != wb {
				return wa < wb
			}
			return candidates[a].String() < candidates[b].String()
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

func sharesRoot(p topo.Path, rootNodes []topo.NodeID, rootLinks []topo.LinkID) bool {
	if len(p.Nodes) < len(rootNodes) || len(p.Links) < len(rootLinks) {
		return false
	}
	for i, n := range rootNodes {
		if p.Nodes[i] != n {
			return false
		}
	}
	for i, l := range rootLinks {
		if p.Links[i] != l {
			return false
		}
	}
	return true
}

func containsPath(ps []topo.Path, q topo.Path) bool {
	for _, p := range ps {
		if p.Equal(q) {
			return true
		}
	}
	return false
}

// DisjointPair returns a link-disjoint (primary, backup) path pair with small
// total weight. It tries each of the kPrimaries shortest paths as the
// primary, pairing it with the shortest path avoiding the primary's links,
// and keeps the pair with the lowest combined weight. This removal-based
// heuristic is not always optimal (unlike Suurballe) but finds a pair
// whenever one of the candidate primaries admits one.
func DisjointPair(g *topo.Graph, src, dst topo.NodeID, kPrimaries int, m Metric, c Constraints) (primary, backup topo.Path, err error) {
	if kPrimaries <= 0 {
		kPrimaries = 4
	}
	prims, err := KShortest(g, src, dst, kPrimaries, m, c)
	if err != nil {
		return topo.Path{}, topo.Path{}, err
	}
	best := -1.0
	for _, p := range prims {
		avoid := map[topo.LinkID]bool{}
		for id := range c.AvoidLinks {
			avoid[id] = true
		}
		for _, l := range p.Links {
			avoid[l] = true
		}
		b, err := ShortestPath(g, src, dst, m, Constraints{AvoidLinks: avoid, AvoidNodes: c.AvoidNodes})
		if err != nil {
			continue
		}
		total := PathWeight(g, p, m) + PathWeight(g, b, m)
		if best < 0 || total < best {
			best = total
			primary, backup = p, b
		}
	}
	if best < 0 {
		return topo.Path{}, topo.Path{}, ErrNoPath
	}
	return primary, backup, nil
}
