package rwa

import (
	"fmt"
	"sort"

	"griphon/internal/topo"
)

// ipath is a path in the compiled engine's integer domain. weight caches the
// path's total weight, computed once when the path is generated (the seed
// implementation recomputed it — and the path's string form — inside every
// sort comparison).
type ipath struct {
	nodes  []int32
	links  []int32
	weight float64
}

func (p ipath) toPath(ix *topo.Index) topo.Path {
	out := topo.Path{
		Nodes: make([]topo.NodeID, len(p.nodes)),
		Links: make([]topo.LinkID, len(p.links)),
	}
	for i, n := range p.nodes {
		out.Nodes[i] = ix.NodeIDAt(n)
	}
	for i, l := range p.links {
		out.Links[i] = ix.LinkIDAt(l)
	}
	return out
}

// lessNodeSeq orders node-index sequences lexicographically. Because node
// indices follow sorted-NodeID order and '-' sorts below every ID character,
// this is exactly the order of the "A-B-C" joined strings the seed
// implementation compared.
func lessNodeSeq(a, b []int32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func ipathEqual(a, b ipath) bool {
	if len(a.nodes) != len(b.nodes) || len(a.links) != len(b.links) {
		return false
	}
	for i := range a.nodes {
		if a.nodes[i] != b.nodes[i] {
			return false
		}
	}
	for i := range a.links {
		if a.links[i] != b.links[i] {
			return false
		}
	}
	return true
}

func containsIpath(ps []ipath, q ipath) bool {
	for _, p := range ps {
		if ipathEqual(p, q) {
			return true
		}
	}
	return false
}

func sharesRootIdx(p ipath, rootNodes, rootLinks []int32) bool {
	if len(p.nodes) < len(rootNodes) || len(p.links) < len(rootLinks) {
		return false
	}
	for i, n := range rootNodes {
		if p.nodes[i] != n {
			return false
		}
	}
	for i, l := range rootLinks {
		if p.links[i] != l {
			return false
		}
	}
	return true
}

// kShortestIdx is Yen's algorithm in the integer domain. The scratch arena's
// avoid sets must already hold the caller's base constraints; they are
// restored to exactly that state before returning. Spur searches never
// materialise per-spur avoid maps: the temporary additions are marked in the
// arena and rolled back after each search.
func kShortestIdx(ix *topo.Index, s *scratch, src, dst int32, k int, m Metric) ([]ipath, error) {
	if !dijkstra(ix, src, dst, m, s) {
		return nil, ErrNoPath
	}
	n0, l0 := s.extractPath(src, dst)
	first := ipath{
		nodes:  append([]int32(nil), n0...),
		links:  append([]int32(nil), l0...),
		weight: pathWeightIdx(ix, l0, m),
	}
	paths := []ipath{first}
	var candidates []ipath

	var addedLinks, addedNodes []int32
	addLink := func(li int32) {
		if !s.avoidLink[li] {
			s.avoidLink[li] = true
			addedLinks = append(addedLinks, li)
		}
	}
	addNode := func(ni int32) {
		if !s.avoidNode[ni] {
			s.avoidNode[ni] = true
			addedNodes = append(addedNodes, ni)
		}
	}
	rollback := func() {
		for _, li := range addedLinks {
			s.avoidLink[li] = false
		}
		for _, ni := range addedNodes {
			s.avoidNode[ni] = false
		}
		addedLinks = addedLinks[:0]
		addedNodes = addedNodes[:0]
	}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// For each node of the previous path except the last, branch.
		for i := 0; i < len(prev.nodes)-1; i++ {
			spurNode := prev.nodes[i]
			rootNodes := prev.nodes[:i+1]
			rootLinks := prev.links[:i]

			// Remove the links that previous accepted paths (and pending
			// candidates) take out of this same root, so the spur diverges.
			for _, p := range paths {
				if sharesRootIdx(p, rootNodes, rootLinks) && i < len(p.links) {
					addLink(p.links[i])
				}
			}
			for _, cand := range candidates {
				if sharesRootIdx(cand, rootNodes, rootLinks) && i < len(cand.links) {
					addLink(cand.links[i])
				}
			}
			// Exclude root nodes (other than the spur node) so the total
			// path stays loop-free.
			for _, n := range rootNodes[:i] {
				addNode(n)
			}

			ok := dijkstra(ix, spurNode, dst, m, s)
			rollback()
			if !ok {
				continue
			}
			spurNodes, spurLinks := s.extractPath(spurNode, dst)
			total := ipath{
				nodes: append(append(make([]int32, 0, len(rootNodes)+len(spurNodes)-1), rootNodes...), spurNodes[1:]...),
				links: append(append(make([]int32, 0, len(rootLinks)+len(spurLinks)), rootLinks...), spurLinks...),
			}
			// The spur avoids all strict root nodes and is itself loop-free,
			// so the concatenation is a valid loop-free path by construction
			// (the seed's Validate call could never fire here either).
			if containsIpath(paths, total) || containsIpath(candidates, total) {
				continue
			}
			total.weight = pathWeightIdx(ix, total.links, m)
			candidates = append(candidates, total)
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].weight != candidates[b].weight {
				return candidates[a].weight < candidates[b].weight
			}
			return lessNodeSeq(candidates[a].nodes, candidates[b].nodes)
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

// KShortest returns up to k loop-free paths from src to dst in non-decreasing
// weight order (Yen's algorithm). It returns ErrNoPath if not even one path
// exists.
func KShortest(g *topo.Graph, src, dst topo.NodeID, k int, m Metric, c Constraints) ([]topo.Path, error) {
	if k <= 0 {
		k = 1
	}
	ix := g.Index()
	si, ok := ix.NodeIndex(src)
	if !ok {
		return nil, fmt.Errorf("rwa: unknown source %s", src)
	}
	di, ok := ix.NodeIndex(dst)
	if !ok {
		return nil, fmt.Errorf("rwa: unknown destination %s", dst)
	}
	if src == dst {
		return nil, fmt.Errorf("rwa: source equals destination %s", src)
	}

	s := getScratch(ix.NumNodes(), ix.NumLinks())
	defer putScratch(s)
	s.applyConstraints(ix, c)

	ips, err := kShortestIdx(ix, s, si, di, k, m)
	if err != nil {
		return nil, err
	}
	out := make([]topo.Path, len(ips))
	for i, p := range ips {
		out[i] = p.toPath(ix)
	}
	return out, nil
}

// DisjointPair returns a link-disjoint (primary, backup) path pair with small
// total weight. It tries each of the kPrimaries shortest paths as the
// primary, pairing it with the shortest path avoiding the primary's links,
// and keeps the pair with the lowest combined weight. This removal-based
// heuristic is not always optimal (unlike Suurballe) but finds a pair
// whenever one of the candidate primaries admits one.
func DisjointPair(g *topo.Graph, src, dst topo.NodeID, kPrimaries int, m Metric, c Constraints) (primary, backup topo.Path, err error) {
	if kPrimaries <= 0 {
		kPrimaries = 4
	}
	ix := g.Index()
	si, ok := ix.NodeIndex(src)
	if !ok {
		return topo.Path{}, topo.Path{}, fmt.Errorf("rwa: unknown source %s", src)
	}
	di, ok := ix.NodeIndex(dst)
	if !ok {
		return topo.Path{}, topo.Path{}, fmt.Errorf("rwa: unknown destination %s", dst)
	}
	if src == dst {
		return topo.Path{}, topo.Path{}, fmt.Errorf("rwa: source equals destination %s", src)
	}

	s := getScratch(ix.NumNodes(), ix.NumLinks())
	defer putScratch(s)
	s.applyConstraints(ix, c)

	prims, err := kShortestIdx(ix, s, si, di, kPrimaries, m)
	if err != nil {
		return topo.Path{}, topo.Path{}, err
	}
	best := -1.0
	var bestPrim, bestBackup ipath
	var added []int32
	for _, p := range prims {
		added = added[:0]
		for _, li := range p.links {
			if !s.avoidLink[li] {
				s.avoidLink[li] = true
				added = append(added, li)
			}
		}
		ok := dijkstra(ix, si, di, m, s)
		for _, li := range added {
			s.avoidLink[li] = false
		}
		if !ok {
			continue
		}
		bNodes, bLinks := s.extractPath(si, di)
		total := p.weight + pathWeightIdx(ix, bLinks, m)
		if best < 0 || total < best {
			best = total
			bestPrim = p
			bestBackup.nodes = append(bestBackup.nodes[:0], bNodes...)
			bestBackup.links = append(bestBackup.links[:0], bLinks...)
		}
	}
	if best < 0 {
		return topo.Path{}, topo.Path{}, ErrNoPath
	}
	return bestPrim.toPath(ix), bestBackup.toPath(ix), nil
}
