package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(time.Duration(i%1000)*time.Millisecond, func() {})
		if i%1024 == 1023 {
			k.Run()
		}
	}
	k.Run()
}

func BenchmarkTimerStop(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := k.After(time.Hour, func() {})
		t.Stop()
	}
	k.Run()
}

func BenchmarkJobChain(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seq := NewSequence(k).
			ThenWait(time.Second).
			ThenDo(func() error { return nil }).
			ThenWait(time.Second)
		seq.Go()
		if i%256 == 255 {
			k.Run()
		}
	}
	k.Run()
}

func BenchmarkRandDistributions(b *testing.B) {
	r := NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.ExpDuration(time.Minute)
		_ = r.Jitter(time.Second, 0.05)
	}
}
