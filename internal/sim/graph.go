package sim

import "fmt"

// NodeID identifies one node of a Graph.
type NodeID int

// graphNode is one unit of work plus its wiring. state tracks the node
// through its lifecycle; nodes never run twice.
type graphNode struct {
	name  string
	run   func() *Job
	succs []NodeID
	// waiting counts unfinished predecessors; the node starts the instant
	// it reaches zero (all predecessors succeeded).
	waiting int
	state   nodeState
	err     error
}

type nodeState int

const (
	nodePending nodeState = iota
	nodeRunning
	nodeDone    // completed without error
	nodeFailed  // completed with error
	nodeSkipped // a (transitive) predecessor failed; never started
)

// Graph runs jobs under happens-before constraints: nodes are jobs, edges are
// dependencies, and a node starts the instant its last predecessor completes
// successfully — not when some coarser phase barrier falls. It is the
// replacement for chaining independent EMS steps through Sequence, where
// simulated latency is the sum of every step even when steps touch
// independent elements.
//
// Determinism: when one completion unblocks several nodes they start in
// node-creation order, synchronously within the completing event, exactly as
// Sequence starts its next step inside the previous step's completion
// callback. A linear chain of Graph nodes is therefore event-for-event
// identical to the equivalent Sequence.
//
// Failure: a node completing with an error marks every (transitive) dependent
// skipped; independent branches keep running. The graph's job completes when
// all nodes are done, failed or skipped, with the first error in
// node-creation order (not completion order, which would make the reported
// error depend on relative EMS timing).
type Graph struct {
	k       *Kernel
	nodes   []graphNode
	job     *Job
	started bool
	pending int
}

// NewGraph returns an empty graph whose completion is observable via Go's
// returned job.
func NewGraph(k *Kernel) *Graph {
	return &Graph{k: k, job: k.NewJob()}
}

// Node adds a unit of work and returns its ID. run is called when the node
// starts and returns the job the node waits on; a nil run (or a run returning
// a nil job) is an instantaneous barrier. Nodes added after Go panic.
func (g *Graph) Node(name string, run func() *Job) NodeID {
	if g.started {
		panic("sim: Graph.Node after Go")
	}
	g.nodes = append(g.nodes, graphNode{name: name, run: run})
	return NodeID(len(g.nodes) - 1)
}

// Edge declares that to must not start before from completes successfully.
// Duplicate edges are harmless but count twice; self-edges panic immediately,
// longer cycles panic at Go.
func (g *Graph) Edge(from, to NodeID) {
	if g.started {
		panic("sim: Graph.Edge after Go")
	}
	if from == to {
		panic(fmt.Sprintf("sim: Graph self-edge on node %d (%s)", from, g.nodes[from].name))
	}
	g.nodes[from].succs = append(g.nodes[from].succs, to)
	g.nodes[to].waiting++
}

// Job returns the job that completes when every node is done or skipped.
func (g *Graph) Job() *Job { return g.job }

// Go validates the graph is acyclic, starts every root node (in creation
// order, synchronously) and returns the graph's job. An empty graph completes
// at the current instant.
func (g *Graph) Go() *Job {
	if g.started {
		panic("sim: Graph.Go called twice")
	}
	g.started = true
	g.checkAcyclic()
	g.pending = len(g.nodes)
	if g.pending == 0 {
		g.k.Defer(func() { g.job.Complete(nil) })
		return g.job
	}
	for i := range g.nodes {
		if g.nodes[i].waiting == 0 {
			g.start(NodeID(i))
		}
	}
	return g.job
}

// checkAcyclic runs Kahn's algorithm over a scratch copy of the in-degrees;
// a cycle is a construction bug, so it panics rather than erroring.
func (g *Graph) checkAcyclic() {
	indeg := make([]int, len(g.nodes))
	for i := range g.nodes {
		indeg[i] = g.nodes[i].waiting
	}
	queue := make([]NodeID, 0, len(g.nodes))
	for i := range g.nodes {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range g.nodes[n].succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != len(g.nodes) {
		panic(fmt.Sprintf("sim: Graph has a dependency cycle (%d of %d nodes reachable)", seen, len(g.nodes)))
	}
}

// start runs one node whose predecessors have all succeeded.
func (g *Graph) start(id NodeID) {
	n := &g.nodes[id]
	n.state = nodeRunning
	var j *Job
	if n.run != nil {
		j = n.run()
	}
	if j == nil {
		j = g.k.CompletedJob(nil)
	}
	j.OnDone(func(err error) { g.finish(id, err) })
}

// finish records a node's outcome, releases or skips its dependents, and
// completes the graph's job when nothing is left.
func (g *Graph) finish(id NodeID, err error) {
	n := &g.nodes[id]
	n.err = err
	if err != nil {
		n.state = nodeFailed
	} else {
		n.state = nodeDone
	}
	g.pending--
	if err != nil {
		g.skipDependents(id)
	} else {
		for _, s := range n.succs {
			sn := &g.nodes[s]
			if sn.state != nodePending {
				continue // already skipped by a failed sibling branch
			}
			sn.waiting--
			if sn.waiting == 0 {
				g.start(s)
			}
		}
	}
	if g.pending == 0 {
		g.job.Complete(g.firstErr())
	}
}

// skipDependents marks every pending (transitive) dependent of id skipped.
func (g *Graph) skipDependents(id NodeID) {
	stack := append([]NodeID(nil), g.nodes[id].succs...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sn := &g.nodes[s]
		if sn.state != nodePending {
			continue // running or finished before the failure landed, or already skipped
		}
		sn.state = nodeSkipped
		g.pending--
		stack = append(stack, sn.succs...)
	}
}

// firstErr returns the first node error in creation order.
func (g *Graph) firstErr() error {
	for i := range g.nodes {
		if g.nodes[i].err != nil {
			return g.nodes[i].err
		}
	}
	return nil
}
