package sim

import (
	"errors"
	"testing"
	"time"
)

// after is a test helper: a node run function that takes d and fails with err.
func after(k *Kernel, d Duration, err error) func() *Job {
	return func() *Job { return k.AfterJob(d, err) }
}

func TestGraphDiamondTiming(t *testing.T) {
	// root -> {left 5s, right 3s} -> sink 2s. The sink starts when the
	// slower branch ends (5s), not after the sum (8s).
	k := NewKernel(1)
	g := NewGraph(k)
	root := g.Node("root", after(k, 1*time.Second, nil))
	left := g.Node("left", after(k, 5*time.Second, nil))
	right := g.Node("right", after(k, 3*time.Second, nil))
	var sinkStart Time
	sink := g.Node("sink", func() *Job {
		sinkStart = k.Now()
		return k.AfterJob(2*time.Second, nil)
	})
	g.Edge(root, left)
	g.Edge(root, right)
	g.Edge(left, sink)
	g.Edge(right, sink)
	job := g.Go()
	k.Run()
	if err := job.Err(); err != nil {
		t.Fatalf("graph failed: %v", err)
	}
	if want := Time(0).Add(6 * time.Second); sinkStart != want {
		t.Errorf("sink started at %v, want %v (after the slower branch)", sinkStart, want)
	}
	if want := 8 * time.Second; job.Elapsed() != want {
		t.Errorf("graph took %v, want %v", job.Elapsed(), want)
	}
}

func TestGraphLinearChainMatchesSequence(t *testing.T) {
	durs := []Duration{2 * time.Second, 3 * time.Second, 5 * time.Second}

	run := func(build func(k *Kernel) *Job) Duration {
		k := NewKernel(1)
		job := build(k)
		k.Run()
		if job.Err() != nil {
			t.Fatalf("job failed: %v", job.Err())
		}
		return job.Elapsed()
	}

	seq := run(func(k *Kernel) *Job {
		s := NewSequence(k)
		for _, d := range durs {
			d := d
			s.Then(func() *Job { return k.AfterJob(d, nil) })
		}
		return s.Go()
	})
	chain := run(func(k *Kernel) *Job {
		g := NewGraph(k)
		var prev NodeID = -1
		for i, d := range durs {
			n := g.Node("step", after(k, d, nil))
			if i > 0 {
				g.Edge(prev, n)
			}
			prev = n
		}
		return g.Go()
	})
	if seq != chain {
		t.Errorf("linear graph took %v, Sequence took %v; want identical", chain, seq)
	}
}

func TestGraphFailureSkipsDependents(t *testing.T) {
	// root -> bad -> skipped -> skipped2, root -> good. The independent
	// branch still runs; the dependents of the failure never start.
	k := NewKernel(1)
	boom := errors.New("boom")
	g := NewGraph(k)
	started := map[string]bool{}
	mark := func(name string, d Duration, err error) func() *Job {
		return func() *Job {
			started[name] = true
			return k.AfterJob(d, err)
		}
	}
	root := g.Node("root", mark("root", time.Second, nil))
	bad := g.Node("bad", mark("bad", time.Second, boom))
	dep := g.Node("dep", mark("dep", time.Second, nil))
	dep2 := g.Node("dep2", mark("dep2", time.Second, nil))
	good := g.Node("good", mark("good", 10*time.Second, nil))
	g.Edge(root, bad)
	g.Edge(root, good)
	g.Edge(bad, dep)
	g.Edge(dep, dep2)
	job := g.Go()
	k.Run()
	if !errors.Is(job.Err(), boom) {
		t.Fatalf("graph err = %v, want %v", job.Err(), boom)
	}
	if started["dep"] || started["dep2"] {
		t.Error("dependents of the failed node started")
	}
	if !started["good"] {
		t.Error("independent branch did not run")
	}
	// The graph completes only when the independent branch finishes.
	if want := 11 * time.Second; job.Elapsed() != want {
		t.Errorf("graph took %v, want %v (waits for the independent branch)", job.Elapsed(), want)
	}
}

func TestGraphFirstErrorInCreationOrder(t *testing.T) {
	// Two failing roots: the slow one was created first, so its error wins
	// even though the fast one completes first.
	k := NewKernel(1)
	errSlow := errors.New("slow")
	errFast := errors.New("fast")
	g := NewGraph(k)
	g.Node("slow", after(k, 5*time.Second, errSlow))
	g.Node("fast", after(k, 1*time.Second, errFast))
	job := g.Go()
	k.Run()
	if !errors.Is(job.Err(), errSlow) {
		t.Errorf("graph err = %v, want the first-created node's error %v", job.Err(), errSlow)
	}
}

func TestGraphNilRunBarrier(t *testing.T) {
	// A nil-run node is an instantaneous barrier: fan-in, zero latency.
	k := NewKernel(1)
	g := NewGraph(k)
	a := g.Node("a", after(k, 2*time.Second, nil))
	b := g.Node("b", after(k, 3*time.Second, nil))
	barrier := g.Node("barrier", nil)
	var tailStart Time
	tail := g.Node("tail", func() *Job {
		tailStart = k.Now()
		return k.AfterJob(time.Second, nil)
	})
	g.Edge(a, barrier)
	g.Edge(b, barrier)
	g.Edge(barrier, tail)
	job := g.Go()
	k.Run()
	if job.Err() != nil {
		t.Fatalf("graph failed: %v", job.Err())
	}
	if want := Time(0).Add(3 * time.Second); tailStart != want {
		t.Errorf("tail started at %v, want %v", tailStart, want)
	}
}

func TestGraphEmptyCompletes(t *testing.T) {
	k := NewKernel(1)
	job := NewGraph(k).Go()
	k.Run()
	if !job.Done() || job.Err() != nil {
		t.Fatalf("empty graph: done=%v err=%v", job.Done(), job.Err())
	}
	if job.Elapsed() != 0 {
		t.Errorf("empty graph took %v, want 0", job.Elapsed())
	}
}

func TestGraphCyclePanics(t *testing.T) {
	k := NewKernel(1)
	g := NewGraph(k)
	a := g.Node("a", nil)
	b := g.Node("b", nil)
	g.Edge(a, b)
	g.Edge(b, a)
	defer func() {
		if recover() == nil {
			t.Error("Go on a cyclic graph did not panic")
		}
	}()
	g.Go()
}

func TestGraphSelfEdgePanics(t *testing.T) {
	k := NewKernel(1)
	g := NewGraph(k)
	a := g.Node("a", nil)
	defer func() {
		if recover() == nil {
			t.Error("self-edge did not panic")
		}
	}()
	g.Edge(a, a)
}
