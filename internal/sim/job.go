package sim

// Job is a handle to asynchronous simulated work: an EMS configuration run,
// a multi-step connection setup, a repair. A job completes exactly once, with
// or without an error; callbacks registered before completion fire when it
// completes, callbacks registered after fire immediately (via Defer, so
// ordering stays deterministic).
type Job struct {
	k     *Kernel
	done  bool
	err   error
	start Time
	end   Time
	cbs   []func(error)
}

// NewJob returns a fresh, incomplete job stamped with the current time.
func (k *Kernel) NewJob() *Job {
	return &Job{k: k, start: k.now}
}

// CompletedJob returns a job that is already complete with err, useful when a
// code path finishes synchronously but the caller expects a Job.
func (k *Kernel) CompletedJob(err error) *Job {
	j := k.NewJob()
	j.Complete(err)
	return j
}

// Done reports whether the job has completed.
func (j *Job) Done() bool { return j.done }

// Err returns the job's error. It is only meaningful once Done is true.
func (j *Job) Err() error { return j.err }

// Start returns the virtual time the job was created.
func (j *Job) Start() Time { return j.start }

// End returns the virtual time the job completed. Zero until Done.
func (j *Job) End() Time { return j.end }

// Elapsed returns End-Start for a completed job.
func (j *Job) Elapsed() Duration { return j.end.Sub(j.start) }

// Complete marks the job done with err and fires pending callbacks in
// registration order. Completing twice panics: it always indicates a
// double-callback bug in the caller.
func (j *Job) Complete(err error) {
	if j.done {
		panic("sim: job completed twice")
	}
	j.done = true
	j.err = err
	j.end = j.k.now
	cbs := j.cbs
	j.cbs = nil
	for _, cb := range cbs {
		cb(err)
	}
}

// OnDone registers fn to run when the job completes. If the job is already
// complete, fn is deferred to the current instant.
func (j *Job) OnDone(fn func(error)) {
	if j.done {
		err := j.err
		j.k.Defer(func() { fn(err) })
		return
	}
	j.cbs = append(j.cbs, fn)
}

// AfterJob returns a job that completes with err after d of virtual time —
// the simulation analogue of a blocking call with a known latency.
func (k *Kernel) AfterJob(d Duration, err error) *Job {
	j := k.NewJob()
	k.After(d, func() { j.Complete(err) })
	return j
}

// All returns a job that completes when every input job has completed. Its
// error is the first non-nil error in argument order — not completion order,
// which for jobs spread across independently-paced executors (e.g. commands on
// two different EMSes) would make the reported error depend on relative
// timing. With no inputs it completes at the current instant.
func All(k *Kernel, jobs ...*Job) *Job {
	out := k.NewJob()
	if len(jobs) == 0 {
		k.Defer(func() { out.Complete(nil) })
		return out
	}
	remaining := len(jobs)
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		i := i
		j.OnDone(func(err error) {
			errs[i] = err
			remaining--
			if remaining == 0 {
				var first error
				for _, e := range errs {
					if e != nil {
						first = e
						break
					}
				}
				out.Complete(first)
			}
		})
	}
	return out
}

// Sequence runs simulated steps one after another, each step starting when
// the previous one's job completes. A step returning a nil job is treated as
// instantaneous. The sequence stops at the first error.
type Sequence struct {
	k     *Kernel
	steps []func() *Job
	job   *Job
}

// NewSequence returns an empty sequence whose completion is observable via
// Job.
func NewSequence(k *Kernel) *Sequence {
	return &Sequence{k: k, job: k.NewJob()}
}

// Then appends a step and returns the sequence for chaining.
func (s *Sequence) Then(step func() *Job) *Sequence {
	s.steps = append(s.steps, step)
	return s
}

// ThenWait appends a step that simply waits d.
func (s *Sequence) ThenWait(d Duration) *Sequence {
	return s.Then(func() *Job { return s.k.AfterJob(d, nil) })
}

// ThenDo appends an instantaneous step that may fail.
func (s *Sequence) ThenDo(fn func() error) *Sequence {
	return s.Then(func() *Job { return s.k.CompletedJob(fn()) })
}

// Job returns the job that completes when the whole sequence finishes.
func (s *Sequence) Job() *Job { return s.job }

// Go starts the sequence and returns its job.
func (s *Sequence) Go() *Job {
	s.runFrom(0)
	return s.job
}

func (s *Sequence) runFrom(i int) {
	if i >= len(s.steps) {
		s.job.Complete(nil)
		return
	}
	j := s.steps[i]()
	if j == nil {
		j = s.k.CompletedJob(nil)
	}
	j.OnDone(func(err error) {
		if err != nil {
			s.job.Complete(err)
			return
		}
		s.runFrom(i + 1)
	})
}
