package sim

import (
	"errors"
	"testing"
	"time"
)

func TestAfterJob(t *testing.T) {
	k := NewKernel(1)
	j := k.AfterJob(5*time.Second, nil)
	if j.Done() {
		t.Fatal("job done before Run")
	}
	var doneAt Time
	j.OnDone(func(err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		doneAt = k.Now()
	})
	k.Run()
	if !j.Done() {
		t.Fatal("job not done after Run")
	}
	if doneAt != Time(5*time.Second) {
		t.Errorf("completed at %v, want 5s", doneAt)
	}
	if j.Elapsed() != 5*time.Second {
		t.Errorf("Elapsed = %v, want 5s", j.Elapsed())
	}
}

func TestJobErrPropagates(t *testing.T) {
	k := NewKernel(1)
	boom := errors.New("boom")
	j := k.AfterJob(time.Second, boom)
	var got error
	j.OnDone(func(err error) { got = err })
	k.Run()
	if got != boom {
		t.Errorf("err = %v, want boom", got)
	}
	if j.Err() != boom {
		t.Errorf("Err() = %v, want boom", j.Err())
	}
}

func TestOnDoneAfterCompletion(t *testing.T) {
	k := NewKernel(1)
	j := k.CompletedJob(nil)
	fired := false
	j.OnDone(func(error) { fired = true })
	if fired {
		t.Fatal("late OnDone fired synchronously; must defer")
	}
	k.Run()
	if !fired {
		t.Fatal("late OnDone never fired")
	}
}

func TestDoubleCompletePanics(t *testing.T) {
	k := NewKernel(1)
	j := k.NewJob()
	j.Complete(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double Complete did not panic")
		}
	}()
	j.Complete(nil)
}

func TestAllWaitsForEveryJob(t *testing.T) {
	k := NewKernel(1)
	a := k.AfterJob(1*time.Second, nil)
	b := k.AfterJob(3*time.Second, nil)
	c := k.AfterJob(2*time.Second, nil)
	all := All(k, a, b, c)
	var doneAt Time
	all.OnDone(func(err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		doneAt = k.Now()
	})
	k.Run()
	if doneAt != Time(3*time.Second) {
		t.Errorf("All completed at %v, want 3s (slowest child)", doneAt)
	}
}

func TestAllFirstError(t *testing.T) {
	k := NewKernel(1)
	e1 := errors.New("first")
	e2 := errors.New("second")
	a := k.AfterJob(1*time.Second, e1)
	b := k.AfterJob(2*time.Second, e2)
	all := All(k, a, b)
	k.Run()
	if all.Err() != e1 {
		t.Errorf("All err = %v, want first error by argument order", all.Err())
	}
}

// TestAllFirstErrorByArgumentOrder pins the batch-error contract: when jobs on
// independently-paced executors complete out of submission order, All must
// still report the first failing job by argument order, not whichever error
// happened to land first on the virtual clock.
func TestAllFirstErrorByArgumentOrder(t *testing.T) {
	k := NewKernel(1)
	errA := errors.New("a")
	errB := errors.New("b")
	a := k.AfterJob(2*time.Second, errA) // argument 0, completes second
	b := k.AfterJob(1*time.Second, errB) // argument 1, completes first
	all := All(k, a, b)
	k.Run()
	if all.Err() != errA {
		t.Errorf("All err = %v, want errA (first by argument order)", all.Err())
	}

	// A healthy early argument must not mask a later argument's error.
	c := k.AfterJob(1*time.Second, nil)
	d := k.AfterJob(3*time.Second, errB)
	all2 := All(k, c, d)
	k.Run()
	if all2.Err() != errB {
		t.Errorf("All err = %v, want errB", all2.Err())
	}
}

func TestAllEmpty(t *testing.T) {
	k := NewKernel(1)
	all := All(k)
	k.Run()
	if !all.Done() || all.Err() != nil {
		t.Errorf("empty All: done=%v err=%v", all.Done(), all.Err())
	}
}

func TestSequenceRunsStepsInOrder(t *testing.T) {
	k := NewKernel(1)
	var marks []Time
	seq := NewSequence(k).
		ThenWait(2 * time.Second).
		ThenDo(func() error { marks = append(marks, k.Now()); return nil }).
		ThenWait(3 * time.Second).
		ThenDo(func() error { marks = append(marks, k.Now()); return nil })
	j := seq.Go()
	k.Run()
	if !j.Done() || j.Err() != nil {
		t.Fatalf("sequence done=%v err=%v", j.Done(), j.Err())
	}
	if len(marks) != 2 || marks[0] != Time(2*time.Second) || marks[1] != Time(5*time.Second) {
		t.Errorf("marks = %v, want [2s 5s]", marks)
	}
	if j.Elapsed() != 5*time.Second {
		t.Errorf("Elapsed = %v, want 5s", j.Elapsed())
	}
}

func TestSequenceStopsOnError(t *testing.T) {
	k := NewKernel(1)
	boom := errors.New("boom")
	ran := false
	j := NewSequence(k).
		ThenDo(func() error { return boom }).
		ThenDo(func() error { ran = true; return nil }).
		Go()
	k.Run()
	if j.Err() != boom {
		t.Errorf("err = %v, want boom", j.Err())
	}
	if ran {
		t.Error("step after failing step still ran")
	}
}

func TestSequenceNilStepJob(t *testing.T) {
	k := NewKernel(1)
	j := NewSequence(k).
		Then(func() *Job { return nil }).
		ThenWait(time.Second).
		Go()
	k.Run()
	if !j.Done() || j.Err() != nil {
		t.Fatalf("done=%v err=%v", j.Done(), j.Err())
	}
	if j.Elapsed() != time.Second {
		t.Errorf("Elapsed = %v, want 1s", j.Elapsed())
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(1)
	const n = 20000

	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatal("Exp returned negative")
		}
		sum += v
	}
	if mean := sum / n; mean < 9 || mean > 11 {
		t.Errorf("Exp mean = %v, want ~10", mean)
	}

	sum = 0
	for i := 0; i < n; i++ {
		v := r.Uniform(5, 15)
		if v < 5 || v >= 15 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 9.8 || mean > 10.2 {
		t.Errorf("Uniform mean = %v, want ~10", mean)
	}

	sum = 0
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / n; mean < 9.8 || mean > 10.2 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}

	for i := 0; i < n; i++ {
		if v := r.Pareto(1, 1.5); v < 1 {
			t.Fatalf("Pareto below min: %v", v)
		}
	}
}

func TestJitterStaysPositive(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		d := r.Jitter(time.Second, 0.5)
		if d <= 0 {
			t.Fatalf("Jitter returned non-positive %v", d)
		}
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Error("Jitter of zero base should be zero")
	}
}

func TestUniformDuration(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		d := r.UniformDuration(4*time.Hour, 12*time.Hour)
		if d < 4*time.Hour || d >= 12*time.Hour {
			t.Fatalf("UniformDuration out of range: %v", d)
		}
	}
	if d := r.UniformDuration(time.Hour, time.Hour); d != time.Hour {
		t.Errorf("degenerate range: %v, want 1h", d)
	}
}
