// Package sim provides the discrete-event simulation kernel that all GRIPhoN
// substrates run on: a virtual clock, an event queue with deterministic
// ordering, cancellable timers, async jobs, and a seeded random source.
//
// Nothing in this repository sleeps on the wall clock. Every latency — an EMS
// configuration step, laser tuning, a repair crew driving to a fiber cut —
// advances the kernel's virtual time, so experiments spanning simulated weeks
// finish in milliseconds and replay bit-identically for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds since the start of
// the simulation. The zero Time is the simulation epoch.
type Time int64

// Duration re-exports time.Duration so callers express latencies in familiar
// units (sim.Duration(3*time.Second) etc.) without importing both packages.
type Duration = time.Duration

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats t as a duration offset from the simulation epoch.
func (t Time) String() string { return Duration(t).String() }

// Seconds returns t as a floating-point number of seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Forever is a Time far enough in the future that no experiment reaches it.
const Forever Time = math.MaxInt64

// event is a scheduled callback. Events at the same instant fire in the order
// they were scheduled (seq breaks ties) so runs are deterministic.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires.
type Timer struct {
	k  *Kernel
	ev *event
}

// Stop cancels the timer. It reports whether the timer was still pending:
// false means the callback already ran (or Stop was already called).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.k.queue, t.ev.index)
	t.ev.fn = nil
	return true
}

// When returns the virtual time at which the timer fires.
func (t *Timer) When() Time { return t.ev.at }

// Kernel is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated components run in event callbacks on one
// goroutine, which is what makes runs deterministic.
type Kernel struct {
	now   Time
	seq   uint64
	queue eventQueue
	rng   *Rand

	// processed counts events executed, for diagnostics and loop guards.
	processed uint64
}

// NewKernel returns a kernel whose clock starts at the epoch and whose random
// source is seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *Rand { return k.rng }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return k.queue.Len() }

// At schedules fn to run at virtual time at. Scheduling in the past panics:
// it would silently reorder causality.
func (k *Kernel) At(at Time, fn func()) *Timer {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", at, k.now))
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return &Timer{k: k, ev: ev}
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Defer schedules fn to run at the current instant, after all callbacks
// already queued for this instant. It is the simulation analogue of
// "process this after the current batch".
func (k *Kernel) Defer(fn func()) *Timer { return k.At(k.now, fn) }

// Step executes the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.fn == nil { // cancelled
			continue
		}
		k.now = ev.at
		fn := ev.fn
		ev.fn = nil
		k.processed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if it is later than the last event executed).
func (k *Kernel) RunUntil(deadline Time) {
	for k.queue.Len() > 0 {
		next := k.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		k.Step()
	}
	if deadline > k.now {
		k.now = deadline
	}
}

// RunFor executes events for the next d of virtual time.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

// NextAt reports the timestamp of the earliest pending event, if any. It
// lets a multi-kernel driver (core.ShardSet) interleave several kernels in
// deterministic global time order without executing anything.
func (k *Kernel) NextAt() (Time, bool) {
	ev := k.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// peek returns the earliest non-cancelled event without removing it.
func (k *Kernel) peek() *event {
	for k.queue.Len() > 0 {
		ev := k.queue[0]
		if ev.fn != nil {
			return ev
		}
		heap.Pop(&k.queue)
	}
	return nil
}
