package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.After(3*time.Second, func() { got = append(got, 3) })
	k.After(1*time.Second, func() { got = append(got, 1) })
	k.After(2*time.Second, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != Time(3*time.Second) {
		t.Errorf("Now() = %v, want 3s", k.Now())
	}
}

func TestKernelTieBreakFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var fired []string
	k.After(time.Second, func() {
		fired = append(fired, "a")
		k.After(time.Second, func() { fired = append(fired, "c") })
	})
	k.After(1500*time.Millisecond, func() { fired = append(fired, "b") })
	k.Run()
	want := "abc"
	var s string
	for _, f := range fired {
		s += f
	}
	if s != want {
		t.Errorf("fired = %q, want %q", s, want)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(time.Second, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(Time(0), func() {})
}

func TestTimerStop(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(time.Second, func() {})
	k.Run()
	if tm.Stop() {
		t.Fatal("Stop returned true after timer fired")
	}
}

func TestTimerStopMiddleOfQueue(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.After(1*time.Second, func() { got = append(got, 1) })
	tm := k.After(2*time.Second, func() { got = append(got, 2) })
	k.After(3*time.Second, func() { got = append(got, 3) })
	tm.Stop()
	k.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var count int
	for i := 1; i <= 5; i++ {
		k.After(time.Duration(i)*time.Second, func() { count++ })
	}
	k.RunUntil(Time(3 * time.Second))
	if count != 3 {
		t.Errorf("count = %d after RunUntil(3s), want 3", count)
	}
	if k.Now() != Time(3*time.Second) {
		t.Errorf("Now = %v, want 3s", k.Now())
	}
	k.Run()
	if count != 5 {
		t.Errorf("count = %d after Run, want 5", count)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(time.Hour)
	if k.Now() != Time(time.Hour) {
		t.Errorf("Now = %v, want 1h", k.Now())
	}
}

func TestDeferRunsAtCurrentInstant(t *testing.T) {
	k := NewKernel(1)
	var at Time = -1
	k.After(time.Second, func() {
		k.Defer(func() { at = k.Now() })
	})
	k.Run()
	if at != Time(time.Second) {
		t.Errorf("deferred callback ran at %v, want 1s", at)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []float64 {
		k := NewKernel(seed)
		var out []float64
		for i := 0; i < 50; i++ {
			d := k.Rand().ExpDuration(time.Minute)
			k.After(d, func() { out = append(out, k.Now().Seconds()) })
		}
		k.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same && len(a) == len(c) {
		t.Error("different seeds produced identical runs")
	}
}

// Property: however events are scheduled, execution order is sorted by
// (time, schedule order), and the clock never goes backwards.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel(7)
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i := i
			at := Time(time.Duration(d) * time.Millisecond)
			k.At(at, func() { fired = append(fired, rec{k.Now(), i}) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		var last Time = -1
		for _, f := range fired {
			if f.at < last {
				return false
			}
			last = f.at
		}
		// Same-instant events must fire in scheduling order.
		for i := 1; i < len(fired); i++ {
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	var epoch Time
	u := epoch.Add(90 * time.Second)
	if u.Sub(epoch) != 90*time.Second {
		t.Errorf("Sub = %v, want 90s", u.Sub(epoch))
	}
	if !epoch.Before(u) || !u.After(epoch) {
		t.Error("Before/After inconsistent")
	}
	if u.Seconds() != 90 {
		t.Errorf("Seconds = %v, want 90", u.Seconds())
	}
	if u.String() != "1m30s" {
		t.Errorf("String = %q, want 1m30s", u.String())
	}
}

func TestKernelAccessors(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(time.Second, func() {})
	if tm.When() != Time(time.Second) {
		t.Errorf("When = %v", tm.When())
	}
	if k.Pending() != 1 {
		t.Errorf("Pending = %d", k.Pending())
	}
	k.Run()
	if k.Processed() != 1 {
		t.Errorf("Processed = %d", k.Processed())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	k.After(-time.Second, func() {})
}

func TestRandSmallHelpers(t *testing.T) {
	r := NewRand(1)
	if v := r.Float64(); v < 0 || v >= 1 {
		t.Errorf("Float64 = %v", v)
	}
	if v := r.Intn(10); v < 0 || v >= 10 {
		t.Errorf("Intn = %v", v)
	}
	perm := r.Perm(5)
	seen := map[int]bool{}
	for _, p := range perm {
		seen[p] = true
	}
	if len(seen) != 5 {
		t.Errorf("Perm = %v", perm)
	}
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	r.Exp(0)
}

func TestPeekSkipsCancelled(t *testing.T) {
	k := NewKernel(1)
	t1 := k.After(time.Second, func() {})
	fired := false
	k.After(2*time.Second, func() { fired = true })
	t1.Stop()
	// RunUntil exercises peek over the cancelled head.
	k.RunUntil(Time(3 * time.Second))
	if !fired {
		t.Error("event after cancelled head did not fire")
	}
}

func TestJobStartEndAccessors(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(time.Minute)
	j := k.AfterJob(time.Second, nil)
	if j.Start() != Time(time.Minute) {
		t.Errorf("Start = %v", j.Start())
	}
	k.Run()
	if j.End() != Time(time.Minute+time.Second) {
		t.Errorf("End = %v", j.End())
	}
}

func TestSequenceJobAccessor(t *testing.T) {
	k := NewKernel(1)
	s := NewSequence(k).ThenWait(time.Second)
	if s.Job() == nil || s.Job().Done() {
		t.Error("Job accessor wrong before Go")
	}
	s.Go()
	k.Run()
	if !s.Job().Done() {
		t.Error("sequence job not done")
	}
}
