package sim

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the handful of distributions the simulator needs.
// Every kernel owns exactly one Rand so a run is fully determined by its seed.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Uniform returns a uniform value in [lo,hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.r.NormFloat64()
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("sim: Exp mean must be positive")
	}
	return r.r.ExpFloat64() * mean
}

// Pareto returns a bounded Pareto-ish heavy-tailed value with the given
// minimum and shape alpha. Used for bulk-transfer size distributions.
func (r *Rand) Pareto(min, alpha float64) float64 {
	u := r.r.Float64()
	for u == 0 {
		u = r.r.Float64()
	}
	return min / math.Pow(u, 1/alpha)
}

// Jitter returns base scaled by a normally distributed factor with relative
// standard deviation rel, clamped to stay positive (at least 1% of base).
// It is the standard way latency models add realistic variation.
func (r *Rand) Jitter(base Duration, rel float64) Duration {
	if base <= 0 {
		return base
	}
	f := r.Normal(1, rel)
	if f < 0.01 {
		f = 0.01
	}
	return Duration(float64(base) * f)
}

// UniformDuration returns a uniform duration in [lo,hi).
func (r *Rand) UniformDuration(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.r.Int63n(int64(hi-lo)))
}

// ExpDuration returns an exponentially distributed duration with the given
// mean.
func (r *Rand) ExpDuration(mean Duration) Duration {
	return Duration(r.Exp(float64(mean)))
}
