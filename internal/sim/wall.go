package sim

import "time"

// Stopwatch measures real elapsed wall time. It exists because internal/sim
// is the only package the wallclock analyzer lets read the host clock:
// everything in the simulation measures virtual time through the Kernel, and
// the few operator-facing wants for real time — "a simulated month ran in N
// seconds of wall time" — go through a Stopwatch so the exception stays in
// one reviewable place.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch starts a wall-clock stopwatch.
func NewStopwatch() *Stopwatch {
	return &Stopwatch{start: time.Now()}
}

// Elapsed returns the wall time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
