package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"griphon/internal/alarms"
	"griphon/internal/obs"
	"griphon/internal/sim"
)

// EventRecord is one controller event captured by the flight recorder.
type EventRecord struct {
	At   sim.Time `json:"at"`
	Conn string   `json:"conn,omitempty"`
	Kind string   `json:"kind"`
	Text string   `json:"text"`
}

// CommitRecord is one journal commit point: the reason plus the serialized
// commit set, captured even when no journal is attached.
type CommitRecord struct {
	At     sim.Time        `json:"at"`
	Reason string          `json:"reason"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// SpanRecord is one completed span pulled from the tracer at dump time.
type SpanRecord struct {
	Name    string   `json:"name"`
	Start   sim.Time `json:"start"`
	End     sim.Time `json:"end"`
	Conn    string   `json:"conn,omitempty"`
	Outcome string   `json:"outcome,omitempty"`
}

// Dump is the flight recorder's crash artifact: the bounded tails of recent
// events, commit records and alarm groups, plus the audit findings (or soak
// failure text) that triggered it.
type Dump struct {
	Reason   string         `json:"reason"`
	At       sim.Time       `json:"at"`
	Findings []string       `json:"findings,omitempty"`
	Events   []EventRecord  `json:"events,omitempty"`
	Commits  []CommitRecord `json:"commits,omitempty"`
	Alarms   []alarms.Group `json:"alarm_groups,omitempty"`
	Spans    []SpanRecord   `json:"spans,omitempty"`
	Outages  []Outage       `json:"open_outages,omitempty"`
}

// ring is a bounded FIFO over T.
type ring[T any] struct {
	cap     int
	items   []T
	dropped uint64
}

func newRing[T any](capacity int) ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return ring[T]{cap: capacity}
}

func (r *ring[T]) push(v T) {
	r.items = append(r.items, v)
	if len(r.items) > r.cap {
		evict := len(r.items) - r.cap
		r.dropped += uint64(evict)
		r.items = append(r.items[:0:0], r.items[evict:]...)
	}
}

func (r *ring[T]) tail() []T { return append([]T(nil), r.items...) }

// FlightRecorder keeps bounded rings of the controller's recent events,
// journal commit records and alarm groups, so that when an invariant audit
// finds something (or the chaos soak fails) the last moments before the
// anomaly can be dumped to JSON — a black box for a deterministic simulator.
type FlightRecorder struct {
	events  ring[EventRecord]
	commits ring[CommitRecord]
	groups  ring[alarms.Group]
	spans   func() []SpanRecord
	ledger  *Ledger
	dumps   uint64
}

// NewFlightRecorder returns a recorder retaining at most capacity records per
// stream, registering depth/drop instruments in reg (nil skips them).
func NewFlightRecorder(capacity int, reg *obs.Registry) *FlightRecorder {
	fr := &FlightRecorder{
		events:  newRing[EventRecord](capacity),
		commits: newRing[CommitRecord](capacity),
		groups:  newRing[alarms.Group](capacity),
	}
	if reg != nil {
		reg.GaugeFunc("griphon_flight_records",
			"Records currently retained by the flight recorder across streams.",
			func() float64 {
				return float64(len(fr.events.items) + len(fr.commits.items) + len(fr.groups.items))
			})
		reg.CounterFunc("griphon_flight_dropped_total",
			"Records evicted from the flight recorder's bounded rings.",
			func() float64 {
				return float64(fr.events.dropped + fr.commits.dropped + fr.groups.dropped)
			})
		reg.CounterFunc("griphon_flight_dumps_total",
			"Flight-recorder dumps taken.",
			func() float64 { return float64(fr.dumps) })
	}
	return fr
}

// AttachLedger wires the availability ledger in so dumps include open outages.
func (fr *FlightRecorder) AttachLedger(l *Ledger) { fr.ledger = l }

// AttachSpans wires a span-tail source (called at dump time).
func (fr *FlightRecorder) AttachSpans(fn func() []SpanRecord) { fr.spans = fn }

// Event records one controller event.
func (fr *FlightRecorder) Event(at sim.Time, conn, kind, text string) {
	fr.events.push(EventRecord{At: at, Conn: conn, Kind: kind, Text: text})
}

// Commit records one journal commit point.
func (fr *FlightRecorder) Commit(at sim.Time, reason string, data json.RawMessage) {
	fr.commits.push(CommitRecord{At: at, Reason: reason, Data: data})
}

// AlarmGroup records one correlated alarm group.
func (fr *FlightRecorder) AlarmGroup(g alarms.Group) { fr.groups.push(g) }

// Snapshot assembles a dump of the current tails. reason says what tripped it;
// findings carries the audit findings or soak failure lines.
func (fr *FlightRecorder) Snapshot(reason string, at sim.Time, findings []string) Dump {
	fr.dumps++
	d := Dump{
		Reason:   reason,
		At:       at,
		Findings: findings,
		Events:   fr.events.tail(),
		Commits:  fr.commits.tail(),
		Alarms:   fr.groups.tail(),
	}
	if fr.spans != nil {
		d.Spans = fr.spans()
	}
	if fr.ledger != nil {
		for _, id := range fr.ledger.sortedConns() {
			if cl := fr.ledger.conns[id]; cl.open != nil {
				d.Outages = append(d.Outages, *cl.open)
			}
		}
	}
	return d
}

// WriteJSON writes the dump as indented JSON.
func (d Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteFile writes the dump to path, creating or truncating it.
func (d Dump) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flight dump: %w", err)
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("flight dump: %w", err)
	}
	return f.Close()
}
