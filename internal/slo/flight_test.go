package slo

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"griphon/internal/alarms"
	"griphon/internal/obs"
	"griphon/internal/sim"
)

func TestFlightRecorderBoundedAndDump(t *testing.T) {
	reg := obs.NewRegistry()
	fr := NewFlightRecorder(3, reg)
	l := New(nil)
	fr.AttachLedger(l)
	fr.AttachSpans(func() []SpanRecord {
		return []SpanRecord{{Name: "op:restore", Start: at(0), End: at(time.Second), Conn: "c1", Outcome: "restored"}}
	})

	for i := 0; i < 5; i++ {
		fr.Event(at(sim.Duration(i)*time.Second), "c1", "test", "event")
	}
	fr.Commit(at(time.Second), "fiber-cut", json.RawMessage(`{"links":1}`))
	fr.AlarmGroup(alarms.Group{Seq: 1, Kind: alarms.GroupFiberCut, Link: "I-II"})

	l.Activate("c1", "acme", at(0), false, false)
	l.Down("c1", at(2*time.Second), CauseFiberCut, "I-II", "", "detect")

	d := fr.Snapshot("audit finding", at(10*time.Second), []string{"ghost pipe"})
	if len(d.Events) != 3 {
		t.Errorf("events retained = %d, want ring cap 3", len(d.Events))
	}
	if len(d.Commits) != 1 || d.Commits[0].Reason != "fiber-cut" {
		t.Errorf("commits = %+v", d.Commits)
	}
	if len(d.Alarms) != 1 || len(d.Spans) != 1 {
		t.Errorf("alarms=%d spans=%d", len(d.Alarms), len(d.Spans))
	}
	if len(d.Outages) != 1 || !d.Outages[0].Open {
		t.Errorf("open outages = %+v", d.Outages)
	}
	if len(d.Findings) != 1 || d.Reason != "audit finding" {
		t.Errorf("reason=%q findings=%v", d.Reason, d.Findings)
	}

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if back.Reason != "audit finding" || len(back.Events) != 3 {
		t.Errorf("round trip = %+v", back)
	}

	path := filepath.Join(t.TempDir(), "flight.json")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"griphon_flight_dropped_total 2",
		"griphon_flight_dumps_total 1",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("export missing %q", want)
		}
	}
}
