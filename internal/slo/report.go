package slo

import (
	"griphon/internal/sim"
)

// ConnReport is one connection's availability accounting — the row of the
// customer's SLA report.
type ConnReport struct {
	Conn        string
	Customer    string
	ActivatedAt sim.Time
	ReleasedAt  sim.Time
	Released    bool
	Degraded    bool
	// Lifetime is the observed service window: activation to release (or
	// now for live connections).
	Lifetime sim.Duration
	Downtime sim.Duration
	// Availability is (Lifetime-Downtime)/Lifetime in [0,1]; 1 for a
	// connection with no observed lifetime yet.
	Availability float64
	Outages      []Outage
}

// CustomerReport aggregates one customer's connections.
type CustomerReport struct {
	Customer string
	Now      sim.Time
	Conns    []ConnReport
	// Totals across all listed connections.
	TotalLifetime sim.Duration
	TotalDowntime sim.Duration
	Availability  float64
	OutageCount   int
	Unattributed  int
}

// Report assembles the SLA report for one customer as of now. An empty
// customer selects every non-internal connection (the operator view).
// Internal carrier connections never appear: their failures surface through
// the customer circuits riding them.
func (l *Ledger) Report(customer string, now sim.Time) CustomerReport {
	rep := CustomerReport{Customer: customer, Now: now}
	for _, id := range l.sortedConns() {
		cl := l.conns[id]
		if cl.internal {
			continue
		}
		if customer != "" && cl.customer != customer {
			continue
		}
		cr := ConnReport{
			Conn:        cl.conn,
			Customer:    cl.customer,
			ActivatedAt: cl.activatedAt,
			ReleasedAt:  cl.releasedAt,
			Released:    cl.released,
			Degraded:    cl.degraded,
			Downtime:    l.Downtime(id, now),
			Outages:     l.Outages(id),
		}
		end := now
		if cl.released {
			end = cl.releasedAt
		}
		if end.After(cl.activatedAt) {
			cr.Lifetime = end.Sub(cl.activatedAt)
		}
		cr.Availability = availability(cr.Lifetime, cr.Downtime)
		rep.Conns = append(rep.Conns, cr)
		rep.TotalLifetime += cr.Lifetime
		rep.TotalDowntime += cr.Downtime
		rep.OutageCount += len(cr.Outages)
		for _, o := range cr.Outages {
			if o.Cause == CauseUnknown {
				rep.Unattributed++
			}
		}
	}
	rep.Availability = availability(rep.TotalLifetime, rep.TotalDowntime)
	return rep
}

func availability(lifetime, downtime sim.Duration) float64 {
	if lifetime <= 0 {
		return 1
	}
	return float64(lifetime-downtime) / float64(lifetime)
}
