// Package slo is the customer-facing fault-visibility and SLA layer (paper
// §2.2: the customer GUI promises "per-customer connection management + fault
// visibility"). It keeps a per-connection availability ledger in virtual
// time: up/down intervals opened and closed at the controller's commit
// points, every outage attributed to a root cause (a fiber cut on a named
// link, a maintenance window, a planned roll/adjust/defrag hit) and tiled
// into phases (detect / localize / provision) that mirror the PR 2 span
// timeline exactly. The chaos soak closes the loop: the ledger's attributed
// intervals must byte-match the controller's own outage accounting and anchor
// to the injected failure instants — zero unattributed downtime.
package slo

import (
	"fmt"
	"sort"

	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Cause classifies the root cause of one outage interval.
type Cause int

const (
	// CauseUnknown is the attribution the chaos soak must never see.
	CauseUnknown Cause = iota
	// CauseFiberCut is an unplanned fiber cut on a named link.
	CauseFiberCut
	// CauseMaintenance is a planned maintenance window taking the link down
	// (connections that could not be rolled off ride through the hit).
	CauseMaintenance
	// CauseRoll is the brief traffic hit of a bridge-and-roll (maintenance
	// rolls and customer-requested moves).
	CauseRoll
	// CauseAdjust is the re-framing hit of an in-place rate adjustment.
	CauseAdjust
	// CauseDefrag is the retune hit of a spectrum-defragmentation sweep.
	CauseDefrag
	// CauseEMSFault is an outage caused or held open by vendor EMS failures
	// rather than the photonic plant.
	CauseEMSFault
	// CauseRecovery marks an outage clock restarted at crash recovery: the
	// journal deliberately excludes outage clocks, so downtime that straddles
	// a controller restart is re-attributed to the recovery instant.
	CauseRecovery
)

func (c Cause) String() string {
	switch c {
	case CauseUnknown:
		return "unknown"
	case CauseFiberCut:
		return "fiber-cut"
	case CauseMaintenance:
		return "maintenance"
	case CauseRoll:
		return "roll"
	case CauseAdjust:
		return "rate-adjust"
	case CauseDefrag:
		return "defrag-retune"
	case CauseEMSFault:
		return "ems-fault"
	case CauseRecovery:
		return "recovery"
	}
	return fmt.Sprintf("Cause(%d)", int(c))
}

// causes lists every attributable cause, for per-cause instrument creation.
var causes = []Cause{CauseUnknown, CauseFiberCut, CauseMaintenance, CauseRoll,
	CauseAdjust, CauseDefrag, CauseEMSFault, CauseRecovery}

// Phase is one sub-interval of an outage: the ledger mirrors the controller's
// restoration phase transitions (detect → localize → provision), so closed
// phases tile the outage exactly, to the virtual nanosecond.
type Phase struct {
	Name  string
	Start sim.Time
	End   sim.Time
	Open  bool
}

// Duration returns the phase extent (zero while open).
func (p Phase) Duration() sim.Duration {
	if p.Open {
		return 0
	}
	return p.End.Sub(p.Start)
}

// Block records one blocked restoration attempt inside an outage — the
// "why is my circuit still down" answer (EMS failure, no alternate path, a
// backup pipe that was itself dead).
type Block struct {
	At     sim.Time
	Reason string
}

// Outage is one down interval of one connection.
type Outage struct {
	Conn     string
	Customer string
	Start    sim.Time
	End      sim.Time
	Open     bool
	Cause    Cause
	// Link names the failed fiber for fiber-cut and maintenance causes.
	Link   topo.LinkID
	Detail string
	// Resolution says how the outage ended: "restored", "protect-switch",
	// "revived" (fiber repaired), "mesh-restored", "released", "roll-done"...
	Resolution string
	Phases     []Phase
	Blocks     []Block
}

// Duration returns the interval extent; open intervals extend to now.
func (o Outage) Duration(now sim.Time) sim.Duration {
	if o.Open {
		return now.Sub(o.Start)
	}
	return o.End.Sub(o.Start)
}

func (o Outage) String() string {
	end := "open"
	if !o.Open {
		end = o.End.String()
	}
	return fmt.Sprintf("%s [%v..%s] %s link=%s res=%s", o.Conn, o.Start, end, o.Cause, o.Link, o.Resolution)
}

// connLedger is one connection's availability record.
type connLedger struct {
	conn        string
	customer    string
	internal    bool
	activatedAt sim.Time
	releasedAt  sim.Time
	released    bool
	degraded    bool
	outages     []*Outage
	open        *Outage // also the last element of outages while open
}

// Ledger is the per-connection availability ledger. Like the controller it
// serves, it lives on the single simulation thread; all timestamps are
// virtual. The zero value is NOT usable — call New.
type Ledger struct {
	conns map[string]*connLedger
	order []string

	// Instruments (nil registry ⇒ all remain nil and updates are skipped).
	outagesTotal  map[Cause]*obs.Counter
	downtimeTotal map[Cause]*obs.Counter
	outageSecs    *obs.Histogram
	phaseSecs     map[string]*obs.Histogram
	phaseSecsAny  func(name string) *obs.Histogram
	unattributed  *obs.Counter
	blocksTotal   *obs.Counter
}

// phaseNames are the known outage phases, pre-registered so scrapes see the
// whole family even before the first outage.
var phaseNames = []string{"detect", "localize", "provision", "switch", "activate", "repair-wait", "hit"}

// New returns an empty ledger, registering its instruments in reg (nil skips
// instrumentation).
func New(reg *obs.Registry) *Ledger {
	l := &Ledger{conns: map[string]*connLedger{}}
	if reg == nil {
		return l
	}
	l.outagesTotal = map[Cause]*obs.Counter{}
	l.downtimeTotal = map[Cause]*obs.Counter{}
	for _, c := range causes {
		l.outagesTotal[c] = reg.Counter("griphon_sla_outages_total",
			"Ledger outage intervals closed, by attributed root cause.", "cause", c.String())
		l.downtimeTotal[c] = reg.Counter("griphon_sla_downtime_seconds_total",
			"Cumulative attributed downtime in virtual seconds, by root cause.", "cause", c.String())
	}
	l.outageSecs = reg.Histogram("griphon_sla_outage_seconds",
		"Per-outage duration in virtual seconds.", nil)
	l.phaseSecs = map[string]*obs.Histogram{}
	for _, name := range phaseNames {
		l.phaseSecs[name] = reg.Histogram("griphon_sla_phase_seconds",
			"Outage phase durations in virtual seconds (phases tile each outage).", nil, "phase", name)
	}
	l.phaseSecsAny = func(name string) *obs.Histogram {
		h, ok := l.phaseSecs[name]
		if !ok {
			h = reg.Histogram("griphon_sla_phase_seconds",
				"Outage phase durations in virtual seconds (phases tile each outage).", nil, "phase", name)
			l.phaseSecs[name] = h
		}
		return h
	}
	l.unattributed = reg.Counter("griphon_sla_unattributed_total",
		"Outage intervals closed without a root cause — must stay zero.")
	l.blocksTotal = reg.Counter("griphon_sla_restore_blocks_total",
		"Blocked restoration attempts recorded inside outages.")
	reg.GaugeFunc("griphon_sla_open_outages",
		"Outage intervals currently open in the ledger.", func() float64 {
			n := 0
			for _, cl := range l.conns {
				if cl.open != nil {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("griphon_sla_tracked_connections",
		"Connections the availability ledger is tracking (released included).",
		func() float64 { return float64(len(l.conns)) })
	reg.GaugeFunc("griphon_sla_degraded_connections",
		"Live connections delivered degraded (groomed-OTN fallback).", func() float64 {
			n := 0
			for _, cl := range l.conns {
				if cl.degraded && !cl.released {
					n++
				}
			}
			return float64(n)
		})
	return l
}

func (l *Ledger) get(conn string) *connLedger {
	cl, ok := l.conns[conn]
	if !ok {
		cl = &connLedger{conn: conn}
		l.conns[conn] = cl
		l.order = append(l.order, conn)
	}
	return cl
}

// Activate registers a connection entering service. Degraded marks a request
// delivered as a groomed-OTN fallback; internal marks carrier-owned
// connections excluded from customer reports.
func (l *Ledger) Activate(conn, customer string, at sim.Time, degraded, internal bool) {
	cl := l.get(conn)
	cl.customer = customer
	cl.activatedAt = at
	cl.degraded = degraded
	cl.internal = internal
	cl.released = false
}

// Degrade marks a tracked connection as running degraded.
func (l *Ledger) Degrade(conn string) {
	if cl, ok := l.conns[conn]; ok {
		cl.degraded = true
	}
}

// Down opens an outage interval attributed to cause. A second Down while one
// is open is a no-op (mirrors the controller's inOutage guard); the first
// attribution wins because it is the root cause. phase names the opening
// phase ("detect", "switch", "repair-wait", "hit").
func (l *Ledger) Down(conn string, at sim.Time, cause Cause, link topo.LinkID, detail, phase string) {
	cl := l.get(conn)
	if cl.open != nil {
		return
	}
	o := &Outage{
		Conn:     conn,
		Customer: cl.customer,
		Start:    at,
		Open:     true,
		Cause:    cause,
		Link:     link,
		Detail:   detail,
	}
	if phase != "" {
		o.Phases = append(o.Phases, Phase{Name: phase, Start: at, Open: true})
	}
	cl.outages = append(cl.outages, o)
	cl.open = o
}

// Phase closes the open phase and opens a new one at the same instant —
// called at exactly the controller's phase-span transitions, so closed phases
// tile the outage with no gaps.
func (l *Ledger) Phase(conn string, at sim.Time, name string) {
	cl, ok := l.conns[conn]
	if !ok || cl.open == nil {
		return
	}
	l.closePhase(cl.open, at)
	cl.open.Phases = append(cl.open.Phases, Phase{Name: name, Start: at, Open: true})
}

func (l *Ledger) closePhase(o *Outage, at sim.Time) {
	if n := len(o.Phases); n > 0 && o.Phases[n-1].Open {
		p := &o.Phases[n-1]
		p.End = at
		p.Open = false
		if l.phaseSecsAny != nil {
			l.phaseSecsAny(p.Name).Observe(p.Duration().Seconds())
		}
	}
}

// Block records a blocked restoration attempt inside the open outage.
func (l *Ledger) Block(conn string, at sim.Time, reason string) {
	cl, ok := l.conns[conn]
	if !ok || cl.open == nil {
		return
	}
	cl.open.Blocks = append(cl.open.Blocks, Block{At: at, Reason: reason})
	if l.blocksTotal != nil {
		l.blocksTotal.Inc()
	}
}

// Up closes the open outage interval with the given resolution. A no-op when
// no interval is open.
func (l *Ledger) Up(conn string, at sim.Time, resolution string) {
	cl, ok := l.conns[conn]
	if !ok || cl.open == nil {
		return
	}
	o := cl.open
	l.closePhase(o, at)
	o.End = at
	o.Open = false
	o.Resolution = resolution
	cl.open = nil
	if l.outagesTotal != nil {
		l.outagesTotal[o.Cause].Inc()
		l.downtimeTotal[o.Cause].Add(o.End.Sub(o.Start).Seconds())
		l.outageSecs.Observe(o.End.Sub(o.Start).Seconds())
		if o.Cause == CauseUnknown {
			l.unattributed.Inc()
		}
	}
}

// Release retires a connection: any open outage closes as "released" and the
// lifetime clock stops.
func (l *Ledger) Release(conn string, at sim.Time) {
	cl, ok := l.conns[conn]
	if !ok {
		return
	}
	l.Up(conn, at, "released")
	cl.released = true
	cl.releasedAt = at
}

// Outages returns copies of a connection's outage intervals, oldest first.
func (l *Ledger) Outages(conn string) []Outage {
	cl, ok := l.conns[conn]
	if !ok {
		return nil
	}
	out := make([]Outage, len(cl.outages))
	for i, o := range cl.outages {
		out[i] = *o
		out[i].Phases = append([]Phase(nil), o.Phases...)
		out[i].Blocks = append([]Block(nil), o.Blocks...)
	}
	return out
}

// Downtime returns a connection's cumulative ledger downtime as of now, the
// still-open interval included. By construction it must equal the
// controller's own Connection.Outage accounting to the nanosecond — the
// chaos soak asserts exactly that.
func (l *Ledger) Downtime(conn string, now sim.Time) sim.Duration {
	cl, ok := l.conns[conn]
	if !ok {
		return 0
	}
	var total sim.Duration
	for _, o := range cl.outages {
		total += o.Duration(now)
	}
	return total
}

// Conns returns every tracked connection ID in activation order.
func (l *Ledger) Conns() []string {
	return append([]string(nil), l.order...)
}

// sortedConns returns tracked connection IDs sorted, for deterministic
// reports.
func (l *Ledger) sortedConns() []string {
	out := append([]string(nil), l.order...)
	sort.Strings(out)
	return out
}
