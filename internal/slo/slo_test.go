package slo

import (
	"strings"
	"testing"
	"time"

	"griphon/internal/obs"
	"griphon/internal/sim"
)

func at(d sim.Duration) sim.Time { return sim.Time(0).Add(d) }

func TestLedgerOutageLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	l := New(reg)

	l.Activate("c1", "acme", at(0), false, false)
	l.Down("c1", at(10*time.Second), CauseFiberCut, "I-III", "LOS storm", "detect")
	// Second Down while open must not reset attribution.
	l.Down("c1", at(11*time.Second), CauseEMSFault, "", "spurious", "detect")
	l.Phase("c1", at(12*time.Second), "localize")
	l.Phase("c1", at(13*time.Second), "provision")
	l.Block("c1", at(14*time.Second), "EMS failure")
	l.Up("c1", at(40*time.Second), "restored")

	outs := l.Outages("c1")
	if len(outs) != 1 {
		t.Fatalf("outages = %d, want 1", len(outs))
	}
	o := outs[0]
	if o.Cause != CauseFiberCut || o.Link != "I-III" {
		t.Errorf("attribution = %v link=%s, want fiber-cut I-III", o.Cause, o.Link)
	}
	if o.Open || o.Duration(at(time.Hour)) != 30*time.Second {
		t.Errorf("duration = %v open=%v, want 30s closed", o.Duration(at(time.Hour)), o.Open)
	}
	if o.Resolution != "restored" {
		t.Errorf("resolution = %q", o.Resolution)
	}
	if len(o.Blocks) != 1 || o.Blocks[0].Reason != "EMS failure" {
		t.Errorf("blocks = %+v", o.Blocks)
	}
	// Phases must tile the outage exactly.
	var sum sim.Duration
	for i, p := range o.Phases {
		if p.Open {
			t.Fatalf("phase %d still open", i)
		}
		if i > 0 && p.Start != o.Phases[i-1].End {
			t.Errorf("gap between phase %d and %d", i-1, i)
		}
		sum += p.Duration()
	}
	if sum != o.Duration(at(0)) {
		t.Errorf("phase sum %v != outage %v", sum, o.Duration(at(0)))
	}
	if got := []string{o.Phases[0].Name, o.Phases[1].Name, o.Phases[2].Name}; got[0] != "detect" || got[1] != "localize" || got[2] != "provision" {
		t.Errorf("phase names = %v", got)
	}
	if d := l.Downtime("c1", at(time.Hour)); d != 30*time.Second {
		t.Errorf("downtime = %v", d)
	}
}

func TestLedgerOpenIntervalCountsInDowntime(t *testing.T) {
	l := New(nil)
	l.Activate("c1", "acme", at(0), false, false)
	l.Down("c1", at(5*time.Second), CauseMaintenance, "II-IV", "window", "hit")
	if d := l.Downtime("c1", at(25*time.Second)); d != 20*time.Second {
		t.Errorf("open downtime = %v, want 20s", d)
	}
	// Up with nothing open is a no-op after close.
	l.Up("c1", at(30*time.Second), "revived")
	l.Up("c1", at(31*time.Second), "again")
	if n := len(l.Outages("c1")); n != 1 {
		t.Errorf("outages = %d", n)
	}
}

func TestLedgerReleaseClosesOpenOutage(t *testing.T) {
	l := New(nil)
	l.Activate("c1", "acme", at(0), false, false)
	l.Down("c1", at(10*time.Second), CauseFiberCut, "I-II", "", "detect")
	l.Release("c1", at(30*time.Second))
	outs := l.Outages("c1")
	if len(outs) != 1 || outs[0].Open || outs[0].Resolution != "released" {
		t.Fatalf("outages = %+v", outs)
	}
	rep := l.Report("acme", at(60*time.Second))
	if len(rep.Conns) != 1 {
		t.Fatalf("report conns = %d", len(rep.Conns))
	}
	cr := rep.Conns[0]
	// Lifetime stops at release.
	if cr.Lifetime != 30*time.Second || cr.Downtime != 20*time.Second {
		t.Errorf("lifetime=%v downtime=%v", cr.Lifetime, cr.Downtime)
	}
}

func TestReportFiltersCustomerAndInternal(t *testing.T) {
	l := New(nil)
	l.Activate("a1", "acme", at(0), false, false)
	l.Activate("b1", "bob", at(0), true, false)
	l.Activate("carrier", "", at(0), false, true)
	l.Down("a1", at(10*time.Second), CauseUnknown, "", "", "")
	l.Up("a1", at(20*time.Second), "restored")

	rep := l.Report("acme", at(100*time.Second))
	if len(rep.Conns) != 1 || rep.Conns[0].Conn != "a1" {
		t.Fatalf("acme report = %+v", rep.Conns)
	}
	if rep.Unattributed != 1 || rep.OutageCount != 1 {
		t.Errorf("unattributed=%d outages=%d", rep.Unattributed, rep.OutageCount)
	}
	want := float64(90*time.Second) / float64(100*time.Second)
	if rep.Availability != want {
		t.Errorf("availability = %v, want %v", rep.Availability, want)
	}

	all := l.Report("", at(100*time.Second))
	if len(all.Conns) != 2 {
		t.Fatalf("operator report = %d conns, want 2 (internal excluded)", len(all.Conns))
	}
	for _, c := range all.Conns {
		if c.Conn == "carrier" {
			t.Error("internal connection leaked into report")
		}
		if c.Conn == "b1" && !c.Degraded {
			t.Error("degraded flag lost")
		}
	}
}

func TestLedgerInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	l := New(reg)
	l.Activate("c1", "acme", at(0), false, false)
	l.Down("c1", at(time.Second), CauseFiberCut, "I-II", "", "detect")
	l.Phase("c1", at(2*time.Second), "provision")
	l.Up("c1", at(3*time.Second), "restored")
	l.Activate("c2", "acme", at(0), true, false)
	l.Down("c2", at(time.Second), CauseUnknown, "", "", "")
	l.Up("c2", at(2*time.Second), "restored")

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`griphon_sla_outages_total{cause="fiber-cut"} 1`,
		`griphon_sla_downtime_seconds_total{cause="fiber-cut"} 2`,
		`griphon_sla_unattributed_total 1`,
		`griphon_sla_tracked_connections 2`,
		`griphon_sla_degraded_connections 1`,
		`griphon_sla_open_outages 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("export missing %q", want)
		}
	}
}

func TestCauseStrings(t *testing.T) {
	for _, c := range causes {
		if strings.HasPrefix(c.String(), "Cause(") {
			t.Errorf("cause %d has no name", int(c))
		}
	}
	if !strings.HasPrefix(Cause(99).String(), "Cause(") {
		t.Error("unknown cause string")
	}
	o := Outage{Conn: "c1", Start: at(0), Open: true, Cause: CauseFiberCut, Link: "I-II"}
	if s := o.String(); !strings.Contains(s, "fiber-cut") || !strings.Contains(s, "open") {
		t.Errorf("outage string = %q", s)
	}
}
