package topo

import "fmt"

// Testbed builds the GRIPhoN laboratory prototype topology of paper Fig. 4:
// four ROADMs — two 3-degree (I, III) and two 2-degree (II, IV) — and three
// customer premises that could each host a data center. The three paths
// measured in Table 2 exist by construction: I-IV (1 hop), I-III-IV (2 hops)
// and I-II-III-IV (3 hops).
//
// Span lengths are regional-scale stand-ins (the lab used fiber spools); they
// keep every testbed path within optical reach, matching the prototype, which
// needed no regeneration.
func Testbed() *Graph {
	g := New()
	for _, n := range []Node{
		{ID: "I", HasOTN: true},
		{ID: "II", HasOTN: false},
		{ID: "III", HasOTN: true},
		{ID: "IV", HasOTN: true},
	} {
		mustAddNode(g, n)
	}
	for _, l := range []Link{
		{ID: "I-II", A: "I", B: "II", KM: 300},
		{ID: "I-III", A: "I", B: "III", KM: 310},
		{ID: "I-IV", A: "I", B: "IV", KM: 320},
		{ID: "II-III", A: "II", B: "III", KM: 290},
		{ID: "III-IV", A: "III", B: "IV", KM: 280},
	} {
		mustAddLink(g, l)
	}
	// Three customer premises (paper Fig. 4), each with a 40G muxponder
	// line side as the dedicated access pipe.
	for _, s := range []Site{
		{ID: "DC-A", Home: "I", AccessGbps: 40},
		{ID: "DC-B", Home: "III", AccessGbps: 40},
		{ID: "DC-C", Home: "IV", AccessGbps: 40},
	} {
		mustAddSite(g, s)
	}
	return g
}

// Backbone builds an NSFNET-like 14-node, 21-link continental US backbone
// with realistic span lengths, used for the load, restoration and bulk
// transfer experiments that need more scale than the 4-node testbed. Six of
// the PoPs serve data-center sites.
func Backbone() *Graph {
	g := New()
	otn := map[NodeID]bool{
		"SEA": true, "PAO": true, "SDG": true, "HOU": true,
		"CHI": true, "ATL": true, "NYC": true, "DCX": true,
	}
	for _, id := range []NodeID{
		"SEA", "PAO", "SDG", "SLC", "DEN", "HOU", "LIN",
		"CHI", "PIT", "ANN", "ITH", "NYC", "DCX", "ATL",
	} {
		mustAddNode(g, Node{ID: id, HasOTN: otn[id]})
	}
	for _, l := range []Link{
		{ID: "SEA-PAO", A: "SEA", B: "PAO", KM: 1100},
		{ID: "SEA-SDG", A: "SEA", B: "SDG", KM: 1900},
		{ID: "SEA-CHI", A: "SEA", B: "CHI", KM: 2800},
		{ID: "PAO-SDG", A: "PAO", B: "SDG", KM: 700},
		{ID: "PAO-SLC", A: "PAO", B: "SLC", KM: 1000},
		{ID: "SDG-HOU", A: "SDG", B: "HOU", KM: 2100},
		{ID: "SLC-DEN", A: "SLC", B: "DEN", KM: 600},
		{ID: "SLC-ANN", A: "SLC", B: "ANN", KM: 2400},
		{ID: "DEN-LIN", A: "DEN", B: "LIN", KM: 800},
		{ID: "DEN-HOU", A: "DEN", B: "HOU", KM: 1400},
		{ID: "HOU-ATL", A: "HOU", B: "ATL", KM: 1200},
		{ID: "HOU-DCX", A: "HOU", B: "DCX", KM: 2000},
		{ID: "LIN-CHI", A: "LIN", B: "CHI", KM: 800},
		{ID: "CHI-PIT", A: "CHI", B: "PIT", KM: 740},
		{ID: "CHI-ANN", A: "CHI", B: "ANN", KM: 380},
		{ID: "PIT-ITH", A: "PIT", B: "ITH", KM: 400},
		{ID: "PIT-ATL", A: "PIT", B: "ATL", KM: 900},
		{ID: "ANN-NYC", A: "ANN", B: "NYC", KM: 1000},
		{ID: "ITH-NYC", A: "ITH", B: "NYC", KM: 350},
		{ID: "NYC-DCX", A: "NYC", B: "DCX", KM: 330},
		{ID: "DCX-ATL", A: "DCX", B: "ATL", KM: 870},
	} {
		mustAddLink(g, l)
	}
	for _, s := range []Site{
		{ID: "DC-SEA", Home: "SEA", AccessGbps: 40},
		{ID: "DC-PAO", Home: "PAO", AccessGbps: 40},
		{ID: "DC-HOU", Home: "HOU", AccessGbps: 40},
		{ID: "DC-CHI", Home: "CHI", AccessGbps: 40},
		{ID: "DC-NYC", Home: "NYC", AccessGbps: 40},
		{ID: "DC-ATL", Home: "ATL", AccessGbps: 40},
	} {
		mustAddSite(g, s)
	}
	return g
}

// Ring builds a ring of n nodes (n >= 3) with the given uniform span length.
// Rings are the worst case for disjoint-path routing and are used by property
// tests and the re-grooming experiment (a ring plus one chord models "a new
// route was added").
func Ring(n int, km float64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs at least 3 nodes, got %d", n)
	}
	g := New()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = NodeID(fmt.Sprintf("R%02d", i))
		mustAddNode(g, Node{ID: ids[i], HasOTN: true})
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		mustAddLink(g, Link{
			ID: LinkID(fmt.Sprintf("%s-%s", ids[i], ids[j])),
			A:  ids[i], B: ids[j], KM: km,
		})
	}
	return g, nil
}

// Grid builds a rows x cols mesh (each node linked to its right and lower
// neighbour) with uniform span length, a deterministic stand-in for large
// continental networks in scale tests. Every node hosts an OTN switch; a
// data-center site attaches at each corner.
func Grid(rows, cols int, km float64) (*Graph, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("topo: grid needs at least 2x2, got %dx%d", rows, cols)
	}
	if km <= 0 {
		return nil, fmt.Errorf("topo: non-positive span length %.1f", km)
	}
	g := New()
	id := func(r, c int) NodeID { return NodeID(fmt.Sprintf("G%02d%02d", r, c)) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			mustAddNode(g, Node{ID: id(r, c), HasOTN: true})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAddLink(g, Link{
					ID: LinkID(fmt.Sprintf("%s-%s", id(r, c), id(r, c+1))),
					A:  id(r, c), B: id(r, c+1), KM: km,
				})
			}
			if r+1 < rows {
				mustAddLink(g, Link{
					ID: LinkID(fmt.Sprintf("%s-%s", id(r, c), id(r+1, c))),
					A:  id(r, c), B: id(r+1, c), KM: km,
				})
			}
		}
	}
	for i, corner := range [][2]int{{0, 0}, {0, cols - 1}, {rows - 1, 0}, {rows - 1, cols - 1}} {
		mustAddSite(g, Site{
			ID:         SiteID(fmt.Sprintf("DC-%d", i)),
			Home:       id(corner[0], corner[1]),
			AccessGbps: 400,
		})
	}
	return g, nil
}

func mustAddNode(g *Graph, n Node) {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
}

func mustAddLink(g *Graph, l Link) {
	if err := g.AddLink(l); err != nil {
		panic(err)
	}
}

func mustAddSite(g *Graph, s Site) {
	if err := g.AddSite(s); err != nil {
		panic(err)
	}
}
