package topo

import (
	"fmt"
	"math"

	"griphon/internal/sim"
)

// Continental generates a continental-scale carrier topology: n PoPs placed
// uniformly at random on a 4800 x 3000 km plane (roughly CONUS-sized),
// connected as a Gabriel graph — an edge joins two PoPs when no third PoP
// lies inside the circle having the pair as diameter. Gabriel graphs are
// planar, connected, and have the low average degree (~3-4) of real fiber
// meshes like the DARPA CORONET CONUS topology the paper's program targeted.
// sites data-center sites attach to distinct, well-separated PoPs.
//
// The same seed always yields the same network.
func Continental(n, sites int, seed int64) (*Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("topo: continental needs at least 4 PoPs, got %d", n)
	}
	if sites < 2 || sites > n {
		return nil, fmt.Errorf("topo: need 2..%d sites, got %d", n, sites)
	}
	rng := sim.NewRand(seed)
	const width, height = 4800.0, 3000.0

	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Uniform(0, width), rng.Uniform(0, height)}
	}
	dist := func(a, b pt) float64 {
		return math.Hypot(a.x-b.x, a.y-b.y)
	}

	g := New()
	ids := make([]NodeID, n)
	for i := range pts {
		ids[i] = NodeID(fmt.Sprintf("P%03d", i))
		if err := g.AddNode(Node{ID: ids[i], HasOTN: true}); err != nil {
			return nil, err
		}
	}

	// Gabriel condition: no third point inside the circle with diameter ab.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cx, cy := (pts[i].x+pts[j].x)/2, (pts[i].y+pts[j].y)/2
			r2 := dist(pts[i], pts[j]) / 2
			ok := true
			for k := 0; k < n; k++ {
				if k == i || k == j {
					continue
				}
				if math.Hypot(pts[k].x-cx, pts[k].y-cy) < r2 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			km := dist(pts[i], pts[j])
			if km < 1 {
				km = 1 // co-located points still need a positive span
			}
			err := g.AddLink(Link{
				ID: LinkID(fmt.Sprintf("%s-%s", ids[i], ids[j])),
				A:  ids[i], B: ids[j], KM: km,
			})
			if err != nil {
				return nil, err
			}
		}
	}
	if !g.Connected() {
		// Cannot happen for a Gabriel graph of distinct points, but a
		// pathological seed with duplicate coordinates could manage it.
		return nil, fmt.Errorf("topo: generated graph disconnected (seed %d)", seed)
	}

	// Attach sites to well-separated PoPs: greedy farthest-point picks.
	chosen := []int{0}
	for len(chosen) < sites {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			dMin := math.Inf(1)
			taken := false
			for _, c := range chosen {
				if c == i {
					taken = true
					break
				}
				if d := dist(pts[i], pts[c]); d < dMin {
					dMin = d
				}
			}
			if taken {
				continue
			}
			if dMin > bestD {
				best, bestD = i, dMin
			}
		}
		chosen = append(chosen, best)
	}
	for i, c := range chosen {
		err := g.AddSite(Site{
			ID:         SiteID(fmt.Sprintf("DC-%02d", i)),
			Home:       ids[c],
			AccessGbps: 400,
		})
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}
