// Package topo models the carrier's physical network: ROADM nodes connected
// by fiber spans into a mesh (the DWDM layer's substrate, paper §2.1), plus
// the customer sites that attach to it through dedicated access pipes.
//
// The graph is deliberately layer-free: wavelengths, ODU slots, transponders
// and switches live in the optics/roadm/otn packages, which hang their state
// off the node and link identifiers defined here.
package topo

import (
	"fmt"
	"sort"
)

// NodeID identifies a core network node (a ROADM point of presence).
type NodeID string

// LinkID identifies a bidirectional fiber pair between two nodes.
type LinkID string

// SiteID identifies a customer premises (a data center location).
type SiteID string

// Node is a core PoP hosting a ROADM and, optionally, an OTN switch.
type Node struct {
	ID NodeID
	// HasOTN records whether this PoP hosts an OTN switch for
	// sub-wavelength grooming (paper Fig. 3 places OTN switches at the
	// core PoPs serving data centers).
	HasOTN bool
}

// Link is a bidirectional fiber pair between two nodes. Distance drives the
// optical-reach / regeneration model.
type Link struct {
	ID   LinkID
	A, B NodeID
	// KM is the span length in kilometres.
	KM float64
}

// Other returns the endpoint of l that is not n. It panics if n is not an
// endpoint of l.
func (l *Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("topo: node %s is not an endpoint of link %s", n, l.ID))
}

// Has reports whether n is an endpoint of l.
func (l *Link) Has(n NodeID) bool { return n == l.A || n == l.B }

// Site is a customer premises attached to the core at a home PoP through a
// fixed, dedicated access pipe (the "fat pipe" of paper Fig. 3).
type Site struct {
	ID SiteID
	// Home is the core PoP whose central-office terminal receives this
	// site's access pipe.
	Home NodeID
	// AccessGbps is the capacity of the dedicated access pipe in Gb/s
	// (e.g. 40 for a 10/40 muxponder line side).
	AccessGbps float64
}

// Graph is the core fiber topology plus site attachments. The zero value is
// an empty graph ready to use.
type Graph struct {
	nodes map[NodeID]*Node
	links map[LinkID]*Link
	adj   map[NodeID][]*Link
	sites map[SiteID]*Site

	// compiled caches the integer-indexed view; topology mutations
	// invalidate it (see Index).
	compiled idxCache
	// version counts fiber-topology mutations (nodes and links); caches of
	// computed routes key their validity on it (see Version).
	version uint64
}

// Version returns a counter bumped on every node or link mutation. A cache of
// anything computed from the fiber topology is stale once Version moves.
func (g *Graph) Version() uint64 { return g.version }

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		links: make(map[LinkID]*Link),
		adj:   make(map[NodeID][]*Link),
		sites: make(map[SiteID]*Site),
	}
}

// AddNode adds a node. Adding a duplicate ID is an error.
func (g *Graph) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("topo: empty node ID")
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("topo: duplicate node %s", n.ID)
	}
	c := n
	g.nodes[n.ID] = &c
	g.compiled.invalidate()
	g.version++
	return nil
}

// AddLink adds a fiber link. Both endpoints must already exist; self-loops
// and duplicate IDs are errors. The span length must be positive.
func (g *Graph) AddLink(l Link) error {
	if l.ID == "" {
		return fmt.Errorf("topo: empty link ID")
	}
	if _, ok := g.links[l.ID]; ok {
		return fmt.Errorf("topo: duplicate link %s", l.ID)
	}
	if l.A == l.B {
		return fmt.Errorf("topo: link %s is a self-loop at %s", l.ID, l.A)
	}
	if _, ok := g.nodes[l.A]; !ok {
		return fmt.Errorf("topo: link %s references unknown node %s", l.ID, l.A)
	}
	if _, ok := g.nodes[l.B]; !ok {
		return fmt.Errorf("topo: link %s references unknown node %s", l.ID, l.B)
	}
	if l.KM <= 0 {
		return fmt.Errorf("topo: link %s has non-positive length %.1f km", l.ID, l.KM)
	}
	c := l
	g.links[l.ID] = &c
	g.adj[l.A] = append(g.adj[l.A], &c)
	g.adj[l.B] = append(g.adj[l.B], &c)
	g.compiled.invalidate()
	g.version++
	return nil
}

// AddSite attaches a customer site to its home PoP. The home node must exist.
func (g *Graph) AddSite(s Site) error {
	if s.ID == "" {
		return fmt.Errorf("topo: empty site ID")
	}
	if _, ok := g.sites[s.ID]; ok {
		return fmt.Errorf("topo: duplicate site %s", s.ID)
	}
	if _, ok := g.nodes[s.Home]; !ok {
		return fmt.Errorf("topo: site %s references unknown home node %s", s.ID, s.Home)
	}
	if s.AccessGbps <= 0 {
		return fmt.Errorf("topo: site %s has non-positive access capacity", s.ID)
	}
	c := s
	g.sites[s.ID] = &c
	return nil
}

// Index returns the compiled integer-indexed view of the graph, building it
// on first use and caching it until the next AddNode/AddLink. Safe for
// concurrent use as long as the graph itself is not being mutated.
func (g *Graph) Index() *Index { return g.compiled.get(g) }

// Clone returns a deep copy of the graph: independent node/link/site records
// and a fresh (unbuilt) compiled cache. Shards of a multi-tenant controller
// each clone the topology so their lazily-built Index caches never race.
func (g *Graph) Clone() *Graph {
	c := New()
	for id, n := range g.nodes {
		cp := *n
		c.nodes[id] = &cp
	}
	for _, l := range g.Links() { // sorted, so adjacency order is deterministic
		cp := *l
		c.links[cp.ID] = &cp
		c.adj[cp.A] = append(c.adj[cp.A], &cp)
		c.adj[cp.B] = append(c.adj[cp.B], &cp)
	}
	for id, s := range g.sites {
		cp := *s
		c.sites[id] = &cp
	}
	c.version = g.version
	return c
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Link returns the link with the given ID, or nil.
func (g *Graph) Link(id LinkID) *Link { return g.links[id] }

// Site returns the site with the given ID, or nil.
func (g *Graph) Site(id SiteID) *Site { return g.sites[id] }

// LinkBetween returns a link directly connecting a and b, or nil. If several
// parallel links exist it returns the one with the lowest ID.
func (g *Graph) LinkBetween(a, b NodeID) *Link {
	var best *Link
	for _, l := range g.adj[a] {
		if l.Has(b) {
			if best == nil || l.ID < best.ID {
				best = l
			}
		}
	}
	return best
}

// LinksAt returns the links incident to n, sorted by ID.
func (g *Graph) LinksAt(n NodeID) []*Link {
	out := append([]*Link(nil), g.adj[n]...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Degree returns the number of fiber links at n — the ROADM's degree.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Links returns all links sorted by ID.
func (g *Graph) Links() []*Link {
	out := make([]*Link, 0, len(g.links))
	for _, l := range g.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Sites returns all sites sorted by ID.
func (g *Graph) Sites() []*Site {
	out := make([]*Site, 0, len(g.sites))
	for _, s := range g.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Connected reports whether every node can reach every other node.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	var start NodeID
	for id := range g.nodes {
		start = id
		break
	}
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range g.adj[n] {
			o := l.Other(n)
			if !seen[o] {
				seen[o] = true
				stack = append(stack, o)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// Validate checks structural invariants: a connected graph in which every
// site's home PoP exists. It returns the first problem found.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("topo: graph has no nodes")
	}
	if !g.Connected() {
		return fmt.Errorf("topo: graph is not connected")
	}
	return nil
}
