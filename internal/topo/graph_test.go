package topo

import (
	"strings"
	"testing"
)

func twoNodeGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	if err := g.AddNode(Node{ID: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: "B"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{ID: "A-B", A: "A", B: "B", KM: 100}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddNodeRejectsDuplicatesAndEmpty(t *testing.T) {
	g := New()
	if err := g.AddNode(Node{ID: ""}); err == nil {
		t.Error("empty node ID accepted")
	}
	if err := g.AddNode(Node{ID: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: "A"}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "A"})
	g.AddNode(Node{ID: "B"})
	cases := []struct {
		name string
		l    Link
	}{
		{"empty ID", Link{A: "A", B: "B", KM: 1}},
		{"self loop", Link{ID: "x", A: "A", B: "A", KM: 1}},
		{"unknown A", Link{ID: "x", A: "Z", B: "B", KM: 1}},
		{"unknown B", Link{ID: "x", A: "A", B: "Z", KM: 1}},
		{"zero length", Link{ID: "x", A: "A", B: "B", KM: 0}},
		{"negative length", Link{ID: "x", A: "A", B: "B", KM: -5}},
	}
	for _, c := range cases {
		if err := g.AddLink(c.l); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := g.AddLink(Link{ID: "ok", A: "A", B: "B", KM: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{ID: "ok", A: "A", B: "B", KM: 1}); err == nil {
		t.Error("duplicate link ID accepted")
	}
}

func TestAddSiteValidation(t *testing.T) {
	g := twoNodeGraph(t)
	if err := g.AddSite(Site{ID: "", Home: "A", AccessGbps: 10}); err == nil {
		t.Error("empty site ID accepted")
	}
	if err := g.AddSite(Site{ID: "S", Home: "Z", AccessGbps: 10}); err == nil {
		t.Error("unknown home accepted")
	}
	if err := g.AddSite(Site{ID: "S", Home: "A", AccessGbps: 0}); err == nil {
		t.Error("zero access capacity accepted")
	}
	if err := g.AddSite(Site{ID: "S", Home: "A", AccessGbps: 10}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSite(Site{ID: "S", Home: "B", AccessGbps: 10}); err == nil {
		t.Error("duplicate site accepted")
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{ID: "x", A: "A", B: "B"}
	if l.Other("A") != "B" || l.Other("B") != "A" {
		t.Error("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	l.Other("C")
}

func TestDegreeAndAdjacency(t *testing.T) {
	g := Testbed()
	// Paper Fig. 4: two 3-degree ROADMs and two 2-degree ROADMs.
	wantDeg := map[NodeID]int{"I": 3, "II": 2, "III": 3, "IV": 2}
	for n, want := range wantDeg {
		if got := g.Degree(n); got != want {
			t.Errorf("degree(%s) = %d, want %d", n, got, want)
		}
	}
	links := g.LinksAt("I")
	if len(links) != 3 {
		t.Fatalf("LinksAt(I) = %d links", len(links))
	}
	for i := 1; i < len(links); i++ {
		if links[i-1].ID >= links[i].ID {
			t.Error("LinksAt not sorted")
		}
	}
}

func TestLinkBetween(t *testing.T) {
	g := Testbed()
	if l := g.LinkBetween("I", "IV"); l == nil || l.ID != "I-IV" {
		t.Errorf("LinkBetween(I,IV) = %v", l)
	}
	if l := g.LinkBetween("II", "IV"); l != nil {
		t.Errorf("LinkBetween(II,IV) = %v, want nil", l)
	}
}

func TestConnectedAndValidate(t *testing.T) {
	g := Testbed()
	if err := g.Validate(); err != nil {
		t.Errorf("testbed invalid: %v", err)
	}
	// An isolated node disconnects the graph.
	g.AddNode(Node{ID: "X"})
	if g.Connected() {
		t.Error("graph with isolated node reported connected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate passed on disconnected graph")
	}
	if err := New().Validate(); err == nil {
		t.Error("Validate passed on empty graph")
	}
}

func TestSortedAccessors(t *testing.T) {
	g := Backbone()
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID >= nodes[i].ID {
			t.Fatal("Nodes not sorted")
		}
	}
	links := g.Links()
	for i := 1; i < len(links); i++ {
		if links[i-1].ID >= links[i].ID {
			t.Fatal("Links not sorted")
		}
	}
	sites := g.Sites()
	for i := 1; i < len(sites); i++ {
		if sites[i-1].ID >= sites[i].ID {
			t.Fatal("Sites not sorted")
		}
	}
}

func TestTestbedTable2PathsExist(t *testing.T) {
	g := Testbed()
	for _, nodes := range [][]NodeID{
		{"I", "IV"},
		{"I", "III", "IV"},
		{"I", "II", "III", "IV"},
	} {
		p, err := PathVia(g, nodes...)
		if err != nil {
			t.Errorf("path %v: %v", nodes, err)
			continue
		}
		if p.Hops() != len(nodes)-1 {
			t.Errorf("path %v hops = %d", nodes, p.Hops())
		}
	}
}

func TestBackboneShape(t *testing.T) {
	g := Backbone()
	if g.NumNodes() != 14 {
		t.Errorf("nodes = %d, want 14", g.NumNodes())
	}
	if g.NumLinks() != 21 {
		t.Errorf("links = %d, want 21", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("backbone invalid: %v", err)
	}
	if len(g.Sites()) != 6 {
		t.Errorf("sites = %d, want 6", len(g.Sites()))
	}
	for _, s := range g.Sites() {
		n := g.Node(s.Home)
		if n == nil {
			t.Errorf("site %s home missing", s.ID)
			continue
		}
		if !n.HasOTN {
			t.Errorf("site %s home %s lacks an OTN switch", s.ID, s.Home)
		}
	}
}

func TestRing(t *testing.T) {
	if _, err := Ring(2, 100); err == nil {
		t.Error("Ring(2) accepted")
	}
	g, err := Ring(6, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 || g.NumLinks() != 6 {
		t.Errorf("ring shape: %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	for _, n := range g.Nodes() {
		if g.Degree(n.ID) != 2 {
			t.Errorf("ring degree(%s) = %d", n.ID, g.Degree(n.ID))
		}
	}
}

func TestPathProperties(t *testing.T) {
	g := Testbed()
	p, err := PathVia(g, "I", "II", "III", "IV")
	if err != nil {
		t.Fatal(err)
	}
	if p.Src() != "I" || p.Dst() != "IV" {
		t.Errorf("src/dst = %s/%s", p.Src(), p.Dst())
	}
	if p.Hops() != 3 {
		t.Errorf("hops = %d", p.Hops())
	}
	if got := p.KM(g); got != 300+290+280 {
		t.Errorf("KM = %v", got)
	}
	if !p.HasLink("II-III") || p.HasLink("I-IV") {
		t.Error("HasLink wrong")
	}
	if !p.HasNode("II") || p.HasNode("V") {
		t.Error("HasNode wrong")
	}
	mid := p.Intermediate()
	if len(mid) != 2 || mid[0] != "II" || mid[1] != "III" {
		t.Errorf("Intermediate = %v", mid)
	}
	if p.String() != "I-II-III-IV" {
		t.Errorf("String = %q", p.String())
	}
	if !strings.Contains(Path{}.String(), "empty") {
		t.Error("empty path String")
	}
}

func TestPathDisjointAndEqual(t *testing.T) {
	g := Testbed()
	p1, _ := PathVia(g, "I", "IV")
	p2, _ := PathVia(g, "I", "II", "III", "IV")
	p3, _ := PathVia(g, "I", "III", "IV")
	if !p1.LinkDisjoint(p2) {
		t.Error("I-IV and I-II-III-IV should be disjoint")
	}
	if p2.LinkDisjoint(p3) {
		t.Error("paths sharing III-IV reported disjoint")
	}
	if !p1.Equal(p1) || p1.Equal(p2) {
		t.Error("Equal wrong")
	}
}

func TestPathValidate(t *testing.T) {
	g := Testbed()
	good, _ := PathVia(g, "I", "III", "IV")
	if err := good.Validate(g); err != nil {
		t.Errorf("good path invalid: %v", err)
	}
	bad := Path{Nodes: []NodeID{"I", "IV"}, Links: []LinkID{"I-III"}}
	if err := bad.Validate(g); err == nil {
		t.Error("mismatched link accepted")
	}
	loop := Path{Nodes: []NodeID{"I", "III", "I"}, Links: []LinkID{"I-III", "I-III"}}
	if err := loop.Validate(g); err == nil {
		t.Error("looping path accepted")
	}
	short := Path{Nodes: []NodeID{"I", "IV"}}
	if err := short.Validate(g); err == nil {
		t.Error("node/link count mismatch accepted")
	}
	if err := (Path{}).Validate(g); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := PathVia(g, "I"); err == nil {
		t.Error("single-node PathVia accepted")
	}
	if _, err := PathVia(g, "II", "IV"); err == nil {
		t.Error("PathVia over missing link accepted")
	}
}

func TestDOTRendering(t *testing.T) {
	out := DOT(Testbed())
	for _, want := range []string{
		"graph griphon", `"I" --`, "320 km", "DC-A", "40G access", "+OTN", "3-degree",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every link appears exactly once.
	if got := strings.Count(out, " km"); got != Testbed().NumLinks() {
		t.Errorf("DOT has %d link labels, want %d", got, Testbed().NumLinks())
	}
}

func TestSummaryRendering(t *testing.T) {
	out := Summary(Testbed())
	for _, want := range []string{
		"4 PoPs, 5 fiber links, 3 sites",
		"3-degree: I, III",
		"2-degree: II, IV",
		"site DC-A @ I",
		"1500 km total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(4, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// Links: rows*(cols-1) + (rows-1)*cols = 4*4 + 3*5 = 31.
	if g.NumLinks() != 31 {
		t.Errorf("links = %d, want 31", g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if len(g.Sites()) != 4 {
		t.Errorf("sites = %d", len(g.Sites()))
	}
	// Interior nodes have degree 4, corners 2.
	if g.Degree("G0101") != 4 {
		t.Errorf("interior degree = %d", g.Degree("G0101"))
	}
	if g.Degree("G0000") != 2 {
		t.Errorf("corner degree = %d", g.Degree("G0000"))
	}
	for _, bad := range [][3]any{{1, 5, 200.0}, {5, 1, 200.0}, {3, 3, 0.0}} {
		if _, err := Grid(bad[0].(int), bad[1].(int), bad[2].(float64)); err == nil {
			t.Errorf("Grid(%v) accepted", bad)
		}
	}
}

func TestContinental(t *testing.T) {
	g, err := Continental(75, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 75 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Sites()) != 8 {
		t.Errorf("sites = %d", len(g.Sites()))
	}
	// Gabriel graphs of random points average degree ~4; sanity-band it.
	avg := 2 * float64(g.NumLinks()) / float64(g.NumNodes())
	if avg < 2.5 || avg > 5 {
		t.Errorf("average degree = %.2f, want mesh-like 2.5-5", avg)
	}
	// Deterministic per seed.
	g2, _ := Continental(75, 8, 42)
	if g2.NumLinks() != g.NumLinks() {
		t.Error("same seed produced different graphs")
	}
	g3, _ := Continental(75, 8, 43)
	if g3.NumLinks() == g.NumLinks() && len(g3.Links()) > 0 && g3.Links()[0].KM == g.Links()[0].KM {
		t.Error("different seeds produced identical graphs")
	}
	// Validation.
	for _, bad := range [][3]int{{3, 2, 1}, {10, 1, 1}, {10, 11, 1}} {
		if _, err := Continental(bad[0], bad[1], int64(bad[2])); err == nil {
			t.Errorf("Continental(%v) accepted", bad)
		}
	}
}

func TestContinentalSupportsController(t *testing.T) {
	// The generated mesh must be routable end to end.
	g, err := Continental(40, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	sites := g.Sites()
	// There is a path between every pair of site homes.
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			if sites[i].Home == sites[j].Home {
				t.Fatalf("sites %s and %s share a home", sites[i].ID, sites[j].ID)
			}
		}
	}
}
