package topo

import "sync"

// Index is a compiled, integer-indexed view of a Graph: every node and link
// is assigned a dense index (position in the ID-sorted order), and adjacency
// is stored in CSR form so path search can run on flat arrays instead of
// string-keyed maps. Because indices are assigned in sorted-ID order,
// comparing two indices orders exactly like comparing the underlying IDs —
// which is what keeps the compiled search's tie-breaks byte-identical to the
// string implementation it replaced.
//
// An Index is immutable once built. The Graph caches one and invalidates it
// on any topology mutation (AddNode/AddLink), so callers just use
// Graph.Index() and never hold an Index across mutations.
type Index struct {
	nodes []*Node // position = dense node index; sorted by NodeID
	links []*Link // position = dense link index; sorted by LinkID

	nodeIdx map[NodeID]int32
	linkIdx map[LinkID]int32

	// CSR adjacency: the links at node n are adjLink[adjStart[n]:adjStart[n+1]],
	// with adjNode holding the far endpoint of each. Within a node the links
	// are ordered by LinkID, matching Graph.LinksAt.
	adjStart []int32
	adjLink  []int32
	adjNode  []int32

	linkKM       []float64
	linkA, linkB []int32
}

// buildIndex compiles g. It assumes g is not mutated during the build.
func buildIndex(g *Graph) *Index {
	nodes := g.Nodes()
	links := g.Links()
	ix := &Index{
		nodes:    nodes,
		links:    links,
		nodeIdx:  make(map[NodeID]int32, len(nodes)),
		linkIdx:  make(map[LinkID]int32, len(links)),
		adjStart: make([]int32, len(nodes)+1),
		adjLink:  make([]int32, 2*len(links)),
		adjNode:  make([]int32, 2*len(links)),
		linkKM:   make([]float64, len(links)),
		linkA:    make([]int32, len(links)),
		linkB:    make([]int32, len(links)),
	}
	for i, n := range nodes {
		ix.nodeIdx[n.ID] = int32(i)
	}
	for i, l := range links {
		ix.linkIdx[l.ID] = int32(i)
		ix.linkKM[i] = l.KM
		ix.linkA[i] = ix.nodeIdx[l.A]
		ix.linkB[i] = ix.nodeIdx[l.B]
	}
	// Count degrees, then fill. Iterating links in index (= LinkID) order
	// fills each node's adjacency run already sorted by LinkID.
	for i := range links {
		ix.adjStart[ix.linkA[i]+1]++
		ix.adjStart[ix.linkB[i]+1]++
	}
	for n := 0; n < len(nodes); n++ {
		ix.adjStart[n+1] += ix.adjStart[n]
	}
	fill := make([]int32, len(nodes))
	for i := range links {
		a, b := ix.linkA[i], ix.linkB[i]
		pa := ix.adjStart[a] + fill[a]
		ix.adjLink[pa], ix.adjNode[pa] = int32(i), b
		fill[a]++
		pb := ix.adjStart[b] + fill[b]
		ix.adjLink[pb], ix.adjNode[pb] = int32(i), a
		fill[b]++
	}
	return ix
}

// NumNodes returns the node count.
func (ix *Index) NumNodes() int { return len(ix.nodes) }

// NumLinks returns the link count.
func (ix *Index) NumLinks() int { return len(ix.links) }

// NodeIndex returns the dense index of a node ID.
func (ix *Index) NodeIndex(id NodeID) (int32, bool) {
	i, ok := ix.nodeIdx[id]
	return i, ok
}

// LinkIndex returns the dense index of a link ID.
func (ix *Index) LinkIndex(id LinkID) (int32, bool) {
	i, ok := ix.linkIdx[id]
	return i, ok
}

// NodeIDAt returns the ID of the node at dense index i.
func (ix *Index) NodeIDAt(i int32) NodeID { return ix.nodes[i].ID }

// LinkIDAt returns the ID of the link at dense index i.
func (ix *Index) LinkIDAt(i int32) LinkID { return ix.links[i].ID }

// NodeAt returns the node at dense index i.
func (ix *Index) NodeAt(i int32) *Node { return ix.nodes[i] }

// LinkAt returns the link at dense index i.
func (ix *Index) LinkAt(i int32) *Link { return ix.links[i] }

// LinkKM returns the span length of the link at dense index i.
func (ix *Index) LinkKM(i int32) float64 { return ix.linkKM[i] }

// Endpoints returns the dense node indices of link i's endpoints (A, B).
func (ix *Index) Endpoints(i int32) (int32, int32) { return ix.linkA[i], ix.linkB[i] }

// Adjacency returns the links incident to node n and the corresponding far
// endpoints, ordered by LinkID. The slices alias the index's storage: do not
// modify them.
func (ix *Index) Adjacency(n int32) (links, nodes []int32) {
	lo, hi := ix.adjStart[n], ix.adjStart[n+1]
	return ix.adjLink[lo:hi], ix.adjNode[lo:hi]
}

// idxCache is the Graph-side cache of the compiled index. It lives in its own
// struct so Graph's zero/New construction stays trivial.
type idxCache struct {
	mu  sync.Mutex
	idx *Index
}

func (c *idxCache) get(g *Graph) *Index {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.idx == nil {
		c.idx = buildIndex(g)
	}
	return c.idx
}

func (c *idxCache) invalidate() {
	c.mu.Lock()
	c.idx = nil
	c.mu.Unlock()
}
