package topo

import (
	"fmt"
	"strings"
)

// Path is a loop-free walk through the core: Nodes[0] is the source PoP,
// Nodes[len-1] the destination, and Links[i] connects Nodes[i] to Nodes[i+1].
type Path struct {
	Nodes []NodeID
	Links []LinkID
}

// Hops returns the number of fiber links the path traverses.
func (p Path) Hops() int { return len(p.Links) }

// Src returns the first node, or "" for an empty path.
func (p Path) Src() NodeID {
	if len(p.Nodes) == 0 {
		return ""
	}
	return p.Nodes[0]
}

// Dst returns the last node, or "" for an empty path.
func (p Path) Dst() NodeID {
	if len(p.Nodes) == 0 {
		return ""
	}
	return p.Nodes[len(p.Nodes)-1]
}

// KM returns the total span length of the path in g. Unknown links count as
// zero (Validate catches them).
func (p Path) KM(g *Graph) float64 {
	var km float64
	for _, id := range p.Links {
		if l := g.Link(id); l != nil {
			km += l.KM
		}
	}
	return km
}

// HasLink reports whether the path traverses the given link.
func (p Path) HasLink(id LinkID) bool {
	for _, l := range p.Links {
		if l == id {
			return true
		}
	}
	return false
}

// HasNode reports whether the path visits the given node.
func (p Path) HasNode(id NodeID) bool {
	for _, n := range p.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// Intermediate returns the nodes strictly between source and destination —
// the ROADMs that express (or regenerate) the signal.
func (p Path) Intermediate() []NodeID {
	if len(p.Nodes) <= 2 {
		return nil
	}
	return append([]NodeID(nil), p.Nodes[1:len(p.Nodes)-1]...)
}

// LinkDisjoint reports whether p and q share no links.
func (p Path) LinkDisjoint(q Path) bool {
	set := make(map[LinkID]bool, len(p.Links))
	for _, l := range p.Links {
		set[l] = true
	}
	for _, l := range q.Links {
		if set[l] {
			return false
		}
	}
	return true
}

// Equal reports whether p and q traverse identical node and link sequences.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) || len(p.Links) != len(q.Links) {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	for i := range p.Links {
		if p.Links[i] != q.Links[i] {
			return false
		}
	}
	return true
}

// String renders the path as "I-II-III-IV", the notation paper Table 2 uses.
func (p Path) String() string {
	if len(p.Nodes) == 0 {
		return "<empty>"
	}
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = string(n)
	}
	return strings.Join(parts, "-")
}

// Validate checks that the path is structurally sound in g: consecutive
// nodes joined by the stated links, no repeated nodes, all IDs known.
func (p Path) Validate(g *Graph) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("topo: empty path")
	}
	if len(p.Links) != len(p.Nodes)-1 {
		return fmt.Errorf("topo: path has %d nodes but %d links", len(p.Nodes), len(p.Links))
	}
	seen := make(map[NodeID]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		if g.Node(n) == nil {
			return fmt.Errorf("topo: path references unknown node %s", n)
		}
		if seen[n] {
			return fmt.Errorf("topo: path visits node %s twice", n)
		}
		seen[n] = true
	}
	for i, id := range p.Links {
		l := g.Link(id)
		if l == nil {
			return fmt.Errorf("topo: path references unknown link %s", id)
		}
		if !(l.Has(p.Nodes[i]) && l.Has(p.Nodes[i+1])) {
			return fmt.Errorf("topo: link %s does not join %s and %s", id, p.Nodes[i], p.Nodes[i+1])
		}
	}
	return nil
}

// PathVia builds a Path from a node sequence, resolving each consecutive
// pair to the (lowest-ID) direct link between them.
func PathVia(g *Graph, nodes ...NodeID) (Path, error) {
	if len(nodes) < 2 {
		return Path{}, fmt.Errorf("topo: path needs at least two nodes")
	}
	p := Path{Nodes: append([]NodeID(nil), nodes...)}
	for i := 0; i+1 < len(nodes); i++ {
		l := g.LinkBetween(nodes[i], nodes[i+1])
		if l == nil {
			return Path{}, fmt.Errorf("topo: no link between %s and %s", nodes[i], nodes[i+1])
		}
		p.Links = append(p.Links, l.ID)
	}
	if err := p.Validate(g); err != nil {
		return Path{}, err
	}
	return p, nil
}
