package topo

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz format: ROADMs as circles (label shows
// degree), sites as boxes attached to their home PoPs, links labelled with
// their span lengths. Useful for documentation and for eyeballing generated
// topologies.
func DOT(g *Graph) string {
	var b strings.Builder
	b.WriteString("graph griphon {\n")
	b.WriteString("  layout=neato;\n  overlap=false;\n")
	for _, n := range g.Nodes() {
		shape := "circle"
		label := fmt.Sprintf("%s\\n%d-degree", n.ID, g.Degree(n.ID))
		if n.HasOTN {
			label += "\\n+OTN"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=%q];\n", string(n.ID), shape, label)
	}
	for _, s := range g.Sites() {
		fmt.Fprintf(&b, "  %q [shape=box, label=%q];\n", string(s.ID),
			fmt.Sprintf("%s\\n%.0fG access", s.ID, s.AccessGbps))
		fmt.Fprintf(&b, "  %q -- %q [style=dashed];\n", string(s.ID), string(s.Home))
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "  %q -- %q [label=%q];\n", string(l.A), string(l.B),
			fmt.Sprintf("%.0f km", l.KM))
	}
	b.WriteString("}\n")
	return b.String()
}

// Summary renders a compact text description of the graph: node census,
// link list, site attachments. The form used by the Fig. 4 experiment and
// griphonctl's topology command.
func Summary(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d PoPs, %d fiber links, %d sites\n", g.NumNodes(), g.NumLinks(), len(g.Sites()))
	degrees := map[int][]string{}
	for _, n := range g.Nodes() {
		d := g.Degree(n.ID)
		degrees[d] = append(degrees[d], string(n.ID))
	}
	var ds []int
	for d := range degrees {
		ds = append(ds, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	for _, d := range ds {
		fmt.Fprintf(&b, "  %d-degree: %s\n", d, strings.Join(degrees[d], ", "))
	}
	var totalKM float64
	for _, l := range g.Links() {
		totalKM += l.KM
	}
	fmt.Fprintf(&b, "  fiber plant: %.0f km total\n", totalKM)
	for _, s := range g.Sites() {
		fmt.Fprintf(&b, "  site %s @ %s (%.0fG access)\n", s.ID, s.Home, s.AccessGbps)
	}
	return b.String()
}
