// Package traffic provides flow-level workload modelling: bulk replication
// transfers whose progress follows a circuit's (time-varying) rate, arrival
// process generators, diurnal demand curves, and heavy-tailed dataset sizes.
// Paper §1: inter-data-center peaks are dominated by non-interactive bulk
// transfers ranging from terabytes to petabytes.
package traffic

import (
	"fmt"
	"math"

	"griphon/internal/bw"
	"griphon/internal/sim"
)

// Flow is a bulk transfer of a fixed number of bytes over a channel whose
// rate changes over time (bandwidth-on-demand adjustments, outages). Progress
// integrates rate over virtual time; the Done job completes when the last bit
// lands.
type Flow struct {
	k    *sim.Kernel
	id   string
	size float64 // total bits
	left float64 // bits remaining
	rate bw.Rate
	last sim.Time
	done *sim.Job
	eta  *sim.Timer

	started  sim.Time
	finished sim.Time
}

// NewFlow creates a transfer of sizeBytes bytes, initially at rate zero.
func NewFlow(k *sim.Kernel, id string, sizeBytes float64) (*Flow, error) {
	if sizeBytes <= 0 {
		return nil, fmt.Errorf("traffic: non-positive size %v", sizeBytes)
	}
	return &Flow{
		k:       k,
		id:      id,
		size:    sizeBytes * 8,
		left:    sizeBytes * 8,
		last:    k.Now(),
		started: k.Now(),
		done:    k.NewJob(),
	}, nil
}

// ID returns the flow's identifier.
func (f *Flow) ID() string { return f.id }

// Done returns the job that completes when the transfer finishes.
func (f *Flow) Done() *sim.Job { return f.done }

// Completed reports whether the transfer has finished.
func (f *Flow) Completed() bool { return f.done.Done() }

// Rate returns the current transfer rate.
func (f *Flow) Rate() bw.Rate { return f.rate }

// SetRate changes the transfer rate from now on (0 pauses the flow). Progress
// made at the previous rate is settled first.
func (f *Flow) SetRate(r bw.Rate) {
	if r < 0 {
		r = 0
	}
	f.settle()
	f.rate = r
	f.reschedule()
}

// settle integrates progress at the current rate up to now.
func (f *Flow) settle() {
	now := f.k.Now()
	dt := now.Sub(f.last).Seconds()
	f.last = now
	if f.done.Done() || dt <= 0 || f.rate <= 0 {
		return
	}
	f.left -= float64(f.rate) * dt
	if f.left <= 1e-6 { // float slack: sub-microbit residue is done
		f.left = 0
		f.finish()
	}
}

func (f *Flow) reschedule() {
	if f.eta != nil {
		f.eta.Stop()
		f.eta = nil
	}
	if f.done.Done() || f.rate <= 0 {
		return
	}
	secs := f.left / float64(f.rate)
	d := sim.Duration(math.Ceil(secs * 1e9))
	f.eta = f.k.After(d, func() {
		f.eta = nil
		f.settle()
		if !f.done.Done() {
			// Rounding left a residue; finish now.
			f.left = 0
			f.finish()
		}
	})
}

func (f *Flow) finish() {
	if f.done.Done() {
		return
	}
	f.finished = f.k.Now()
	f.done.Complete(nil)
}

// RemainingBytes returns the unsent byte count as of now.
func (f *Flow) RemainingBytes() float64 {
	f.settle()
	return f.left / 8
}

// TransferredBytes returns the bytes delivered so far.
func (f *Flow) TransferredBytes() float64 {
	return f.size/8 - f.RemainingBytes()
}

// Elapsed returns the transfer duration: start to finish for completed flows,
// start to now otherwise.
func (f *Flow) Elapsed() sim.Duration {
	if f.done.Done() {
		return f.finished.Sub(f.started)
	}
	return f.k.Now().Sub(f.started)
}
