package traffic

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
)

func TestFlowConstantRate(t *testing.T) {
	k := sim.NewKernel(1)
	// 10 Gb/s for 1 TB = 8e12 bits / 1e10 bps = 800 s.
	f, err := NewFlow(k, "f1", TB)
	if err != nil {
		t.Fatal(err)
	}
	f.SetRate(bw.Rate10G)
	k.Run()
	if !f.Completed() {
		t.Fatal("flow not completed")
	}
	want := 800 * time.Second
	if d := f.Elapsed(); d < want || d > want+time.Millisecond {
		t.Errorf("elapsed = %v, want ~%v", d, want)
	}
	if f.RemainingBytes() != 0 {
		t.Errorf("remaining = %v", f.RemainingBytes())
	}
	if got := f.TransferredBytes(); math.Abs(got-TB) > 1 {
		t.Errorf("transferred = %v", got)
	}
}

func TestFlowRateChangeMidway(t *testing.T) {
	k := sim.NewKernel(1)
	f, _ := NewFlow(k, "f", TB) // 8e12 bits
	f.SetRate(bw.Rate10G)       // would finish at 800 s
	k.RunFor(400 * time.Second) // half done
	if rem := f.RemainingBytes(); math.Abs(rem-TB/2) > 1e6 {
		t.Fatalf("remaining at midpoint = %v, want ~%v", rem, TB/2)
	}
	f.SetRate(bw.Rate40G) // 4x speed for the rest: 100 s more
	k.Run()
	want := 500 * time.Second
	if d := f.Elapsed(); d < want || d > want+time.Millisecond {
		t.Errorf("elapsed = %v, want ~%v", d, want)
	}
}

func TestFlowPauseResume(t *testing.T) {
	k := sim.NewKernel(1)
	f, _ := NewFlow(k, "f", TB)
	f.SetRate(bw.Rate10G)
	k.RunFor(100 * time.Second)
	f.SetRate(0) // outage
	k.RunFor(time.Hour)
	if f.Completed() {
		t.Fatal("paused flow completed")
	}
	before := f.RemainingBytes()
	k.RunFor(time.Hour)
	if f.RemainingBytes() != before {
		t.Error("paused flow made progress")
	}
	f.SetRate(bw.Rate10G)
	k.Run()
	if !f.Completed() {
		t.Fatal("flow never completed after resume")
	}
	// 800 s of transfer time + 2 h pause.
	want := 800*time.Second + 2*time.Hour
	if d := f.Elapsed(); d < want || d > want+time.Millisecond {
		t.Errorf("elapsed = %v, want ~%v", d, want)
	}
}

func TestFlowDoneJobFires(t *testing.T) {
	k := sim.NewKernel(1)
	f, _ := NewFlow(k, "f", 1e9)
	fired := false
	f.Done().OnDone(func(error) { fired = true })
	f.SetRate(bw.Rate1G)
	k.Run()
	if !fired {
		t.Error("done job never fired")
	}
}

func TestFlowValidation(t *testing.T) {
	k := sim.NewKernel(1)
	if _, err := NewFlow(k, "f", 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewFlow(k, "f", -5); err == nil {
		t.Error("negative size accepted")
	}
	f, _ := NewFlow(k, "f", 100)
	f.SetRate(-5) // clamps to pause
	if f.Rate() != 0 {
		t.Errorf("negative rate = %v, want 0", f.Rate())
	}
}

// Property: total transfer time at a constant rate equals size/rate no matter
// how often the (same) rate is re-set.
func TestFlowResetInvariance(t *testing.T) {
	prop := func(nResets uint8) bool {
		k := sim.NewKernel(4)
		f, _ := NewFlow(k, "f", 1e9) // 8e9 bits at 1G = 8 s
		f.SetRate(bw.Rate1G)
		resets := int(nResets%7) + 1
		for i := 1; i <= resets; i++ {
			k.At(sim.Time(i*int(time.Second)), func() { f.SetRate(bw.Rate1G) })
		}
		k.Run()
		d := f.Elapsed()
		return f.Completed() && d >= 8*time.Second && d < 8*time.Second+10*time.Millisecond
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoissonArrivals(t *testing.T) {
	k := sim.NewKernel(2)
	var times []sim.Time
	n := PoissonArrivals(k, time.Minute, sim.Time(2*time.Hour), func(i int) {
		times = append(times, k.Now())
	})
	k.Run()
	if len(times) != n {
		t.Fatalf("fired %d of %d arrivals", len(times), n)
	}
	// Mean 1/min over 2 h: expect ~120, allow wide tolerance.
	if n < 80 || n > 170 {
		t.Errorf("arrivals = %d, want ~120", n)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("arrivals out of order")
		}
	}
	if PoissonArrivals(k, 0, sim.Time(time.Hour), func(int) {}) != 0 {
		t.Error("zero mean accepted")
	}
	if PoissonArrivals(k, time.Minute, k.Now(), nil) != 0 {
		t.Error("nil fn accepted")
	}
}

func TestDiurnal(t *testing.T) {
	peak := Diurnal(sim.Time(20*time.Hour), 20, 0.2)
	trough := Diurnal(sim.Time(8*time.Hour), 20, 0.2)
	if math.Abs(peak-1) > 1e-9 {
		t.Errorf("peak = %v, want 1", peak)
	}
	if math.Abs(trough-0.2) > 1e-9 {
		t.Errorf("trough = %v, want 0.2", trough)
	}
	// Clamping.
	if Diurnal(0, 0, -1) < 0 || Diurnal(0, 0, 2) > 1 {
		t.Error("trough clamp failed")
	}
	// Periodicity: same hour next day.
	a := Diurnal(sim.Time(5*time.Hour), 20, 0.1)
	b := Diurnal(sim.Time(29*time.Hour), 20, 0.1)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("not 24 h periodic: %v vs %v", a, b)
	}
}

func TestNightWindow(t *testing.T) {
	// Window 22:00-04:00 wraps midnight.
	cases := []struct {
		hour float64
		want bool
	}{
		{23, true}, {1, true}, {3.5, true}, {4, false}, {12, false}, {21.9, false}, {22, true},
	}
	for _, c := range cases {
		at := sim.Time(c.hour * float64(time.Hour))
		if got := NightWindow(at, 22, 6); got != c.want {
			t.Errorf("NightWindow(%vh) = %v, want %v", c.hour, got, c.want)
		}
	}
	// Non-wrapping window.
	if !NightWindow(sim.Time(10*time.Hour), 9, 2) || NightWindow(sim.Time(12*time.Hour), 9, 2) {
		t.Error("non-wrapping window wrong")
	}
}

func TestDatasetBytes(t *testing.T) {
	rng := sim.NewRand(3)
	for i := 0; i < 5000; i++ {
		v := DatasetBytes(rng, TB, 1000*TB)
		if v < TB || v > 1000*TB {
			t.Fatalf("dataset %v outside bounds", v)
		}
	}
	// Degenerate bounds.
	if v := DatasetBytes(rng, 10, 5); v < 10 {
		t.Errorf("max<min handling: %v", v)
	}
	if v := DatasetBytes(rng, -1, 100); v < 1 {
		t.Errorf("min<=0 handling: %v", v)
	}
}
