package traffic

import (
	"math"
	"time"

	"griphon/internal/sim"
)

// PoissonArrivals schedules fn for each arrival of a Poisson process with the
// given mean inter-arrival time, from now until the deadline. fn receives the
// arrival's index. It returns the number of arrivals scheduled.
func PoissonArrivals(k *sim.Kernel, mean sim.Duration, until sim.Time, fn func(i int)) int {
	if mean <= 0 || fn == nil {
		return 0
	}
	n := 0
	t := k.Now()
	for {
		t = t.Add(k.Rand().ExpDuration(mean))
		if t.After(until) {
			break
		}
		i := n
		k.At(t, func() { fn(i) })
		n++
	}
	return n
}

// Diurnal returns the interactive-demand multiplier in [trough,1] for a time
// of day, peaking at peakHour local time with a 24 h sinusoid. Inter-DC
// interactive traffic follows end users; bulk windows are its trough.
func Diurnal(t sim.Time, peakHour float64, trough float64) float64 {
	if trough < 0 {
		trough = 0
	}
	if trough > 1 {
		trough = 1
	}
	hours := t.Seconds() / 3600
	phase := 2 * math.Pi * (hours - peakHour) / 24
	raw := (1 + math.Cos(phase)) / 2 // 1 at peak, 0 at trough
	return trough + (1-trough)*raw
}

// NightWindow reports whether t falls inside the nightly bulk-transfer window
// [startHour, startHour+lenHours) local time (wrapping midnight).
func NightWindow(t sim.Time, startHour, lenHours float64) bool {
	h := math.Mod(t.Seconds()/3600, 24)
	end := math.Mod(startHour+lenHours, 24)
	if startHour <= end {
		return h >= startHour && h < end
	}
	return h >= startHour || h < end
}

// DatasetBytes draws a bulk replication dataset size: heavy-tailed (bounded
// Pareto) between minBytes and maxBytes, matching the paper's "several
// terabytes to petabytes" spread.
func DatasetBytes(rng *sim.Rand, minBytes, maxBytes float64) float64 {
	if minBytes <= 0 {
		minBytes = 1
	}
	if maxBytes < minBytes {
		maxBytes = minBytes
	}
	v := rng.Pareto(minBytes, 1.2)
	if v > maxBytes {
		v = maxBytes
	}
	return v
}

// Day is one simulated day.
const Day = 24 * time.Hour

// TB is one terabyte in bytes.
const TB = 1e12
