package griphon_test

// Restart tests: the griphond deployment story. A network built with
// WithStateDir journals every committed operation; killing the process and
// building a new network over the same directory must bring back the exact
// controller state — same connection IDs, same states, same routes, same
// virtual clock — and scheduled bookings must still fire.

import (
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"griphon"
	"griphon/internal/api"
	"griphon/internal/journal"
)

type connFingerprint struct {
	id    string
	state string
	rate  string
	layer string
	route string
}

func fingerprint(net *griphon.Network, customer string) []connFingerprint {
	var out []connFingerprint
	for _, c := range net.Connections(customer) {
		out = append(out, connFingerprint{
			id:    string(c.ID),
			state: c.State.String(),
			rate:  c.Rate.String(),
			layer: c.Layer.String(),
			route: c.Route().String(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func TestRestartRecoversState(t *testing.T) {
	dir := t.TempDir()
	open := func(seed int64) *griphon.Network {
		net, err := griphon.New(griphon.Testbed(),
			griphon.WithSeed(seed), griphon.WithStateDir(dir), griphon.WithAutoRepair())
		if err != nil {
			t.Fatal(err)
		}
		return net
	}

	net1 := open(11)
	net1.SetQuota("acme", 10, 0)
	wave, err := net1.Connect("acme", "DC-A", "DC-C", griphon.Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net1.Connect("acme", "DC-A", "DC-B", 12*griphon.Gbps); err != nil {
		t.Fatal(err)
	}
	gone, err := net1.Connect("acme", "DC-B", "DC-C", griphon.Rate1G)
	if err != nil {
		t.Fatal(err)
	}
	if err := net1.Disconnect("acme", gone.ID); err != nil {
		t.Fatal(err)
	}
	booking, err := net1.ScheduleConnect("acme", "DC-A", "DC-C", griphon.Rate1G, 2*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	before := fingerprint(net1, "acme")
	// The clock recovers to the last *committed* event, so capture it here
	// rather than after an uncommitted Advance.
	beforeNow := net1.Now()
	beforeStats := net1.Stats()
	if err := net1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Process restart": a different seed proves the state comes from the
	// journal, not from replaying the same random workload.
	net2 := open(99)
	defer net2.Close()

	if got := net2.Now(); got != beforeNow {
		t.Errorf("virtual clock: recovered %v, want %v", got, beforeNow)
	}
	after := fingerprint(net2, "acme")
	if len(after) != len(before) {
		t.Fatalf("connection count: recovered %d, want %d\nbefore=%v\nafter=%v",
			len(after), len(before), before, after)
	}
	for i := range before {
		if after[i] != before[i] {
			t.Errorf("connection %d diverged:\n before %+v\n after  %+v", i, before[i], after[i])
		}
	}
	s := net2.Stats()
	s.Events, beforeStats.Events = 0, 0 // audit log is in-memory, not durable
	if !reflect.DeepEqual(s, beforeStats) {
		t.Errorf("stats diverged:\n before %+v\n after  %+v", beforeStats, s)
	}

	// The recovered connection is live, not a record: a fiber cut on its
	// working path must trigger restoration.
	recovered := net2.Conn(wave.ID)
	if recovered == nil || recovered.State.String() != "active" {
		t.Fatalf("wavelength %s not active after restart: %+v", wave.ID, recovered)
	}
	if err := net2.CutFiber(string(recovered.Route().Links[0])); err != nil {
		t.Fatal(err)
	}
	net2.Advance(time.Hour)
	if st := net2.Conn(wave.ID).State.String(); st != "active" {
		t.Errorf("wavelength after cut+restore = %s, want active", st)
	}

	// The re-armed booking fires when its window opens on the new process.
	net2.Advance(3 * time.Hour)
	b, err := net2.Booking("acme", booking.ID)
	if err != nil {
		t.Fatalf("booking lost across restart: %v", err)
	}
	if len(b.Conns) == 0 || b.SetupErr != nil {
		t.Errorf("booking did not open after restart: conns=%d err=%v", len(b.Conns), b.SetupErr)
	}

	// Quota survived: the recovered limit still admits within bounds.
	if _, err := net2.Connect("acme", "DC-A", "DC-B", griphon.Rate1G); err != nil {
		t.Errorf("connect under recovered quota: %v", err)
	}
}

// TestGriphondRestart drives the restart through the HTTP API — what an
// operator actually sees when griphond is killed and relaunched with the same
// -state-dir.
func TestGriphondRestart(t *testing.T) {
	dir := t.TempDir()

	net1, err := griphon.New(griphon.Testbed(), griphon.WithSeed(3), griphon.WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(api.NewServer(net1).Handler())
	c1 := api.NewClient(srv1.URL)
	resp, err := c1.Connect(api.ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Connections("acme")
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := net1.Close(); err != nil {
		t.Fatal(err)
	}

	net2, err := griphon.New(griphon.Testbed(), griphon.WithSeed(3), griphon.WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer net2.Close()
	srv2 := httptest.NewServer(api.NewServer(net2).Handler())
	defer srv2.Close()
	c2 := api.NewClient(srv2.URL)

	got, err := c2.Connections("acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("connections after restart = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].State != want[i].State || got[i].Route != want[i].Route {
			t.Errorf("conn %d diverged:\n before %+v\n after  %+v", i, want[i], got[i])
		}
	}
	// The recovered connection accepts operations through the new daemon.
	if err := c2.Disconnect("acme", resp.Connections[0].ID); err != nil {
		t.Errorf("disconnect recovered connection: %v", err)
	}
}

// TestSegmentedWALRestart pins the WithWALSegmentSize plumbing end to end: a
// tiny segment bound must produce a multi-segment WAL directory through the
// facade, and recovery over those segments must rebuild the same state.
func TestSegmentedWALRestart(t *testing.T) {
	dir := t.TempDir()
	open := func(seed int64) *griphon.Network {
		net, err := griphon.New(griphon.Testbed(),
			griphon.WithSeed(seed), griphon.WithStateDir(dir), griphon.WithWALSegmentSize(512))
		if err != nil {
			t.Fatal(err)
		}
		return net
	}

	net1 := open(17)
	for i := 0; i < 6; i++ {
		conn, err := net1.Connect("acme", "DC-A", "DC-C", griphon.Rate1G)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := net1.Disconnect("acme", conn.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := fingerprint(net1, "acme")
	if err := net1.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := journal.WALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("WAL did not rotate under a 512-byte bound: %d segment(s)", len(files))
	}

	net2 := open(71)
	defer net2.Close()
	after := fingerprint(net2, "acme")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("state diverged across segmented restart:\n before %+v\n after  %+v", before, after)
	}
}
