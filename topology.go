package griphon

import (
	"griphon/internal/topo"
)

// Topology describes the carrier's fiber plant and the customer sites
// attached to it. Build one with NewTopology or use the prebuilt Testbed and
// Backbone.
type Topology struct {
	g *topo.Graph
}

// NewTopology returns an empty topology.
func NewTopology() *Topology { return &Topology{g: topo.New()} }

// AddPoP adds a core point of presence hosting a ROADM; hasOTN adds an OTN
// switch for sub-wavelength grooming.
func (t *Topology) AddPoP(id string, hasOTN bool) error {
	return t.g.AddNode(topo.Node{ID: topo.NodeID(id), HasOTN: hasOTN})
}

// AddFiber adds a bidirectional fiber pair between two PoPs with the given
// span length in kilometres.
func (t *Topology) AddFiber(id, a, b string, km float64) error {
	return t.g.AddLink(topo.Link{ID: topo.LinkID(id), A: topo.NodeID(a), B: topo.NodeID(b), KM: km})
}

// AddSite attaches a data-center site to its home PoP through a dedicated
// access pipe of the given capacity in Gb/s.
func (t *Topology) AddSite(id, homePoP string, accessGbps float64) error {
	return t.g.AddSite(topo.Site{ID: topo.SiteID(id), Home: topo.NodeID(homePoP), AccessGbps: accessGbps})
}

// Validate checks the topology is connected and well formed.
func (t *Topology) Validate() error { return t.g.Validate() }

// PoPs returns the PoP IDs in sorted order.
func (t *Topology) PoPs() []string {
	var out []string
	for _, n := range t.g.Nodes() {
		out = append(out, string(n.ID))
	}
	return out
}

// Sites returns the site IDs in sorted order.
func (t *Topology) Sites() []string {
	var out []string
	for _, s := range t.g.Sites() {
		out = append(out, string(s.ID))
	}
	return out
}

// Fibers returns the fiber link IDs in sorted order.
func (t *Topology) Fibers() []string {
	var out []string
	for _, l := range t.g.Links() {
		out = append(out, string(l.ID))
	}
	return out
}

// Testbed returns the paper's Fig. 4 laboratory topology: four ROADMs (two
// 3-degree, two 2-degree) and three customer premises DC-A (PoP I), DC-B
// (PoP III) and DC-C (PoP IV).
func Testbed() *Topology { return &Topology{g: topo.Testbed()} }

// Backbone returns an NSFNET-like 14-node continental US backbone with six
// data-center sites, for experiments needing more scale than the testbed.
func Backbone() *Topology { return &Topology{g: topo.Backbone()} }

// Continental generates a random continental-scale mesh (Gabriel graph over
// n PoPs, CONUS-sized plane) with the given number of well-separated
// data-center sites. Deterministic per seed.
func Continental(n, sites int, seed int64) (*Topology, error) {
	g, err := topo.Continental(n, sites, seed)
	if err != nil {
		return nil, err
	}
	return &Topology{g: g}, nil
}

// DOT renders the topology in Graphviz format.
func (t *Topology) DOT() string { return topo.DOT(t.g) }

// Summary renders a compact text description of the topology.
func (t *Topology) Summary() string { return topo.Summary(t.g) }
